"""Tests for multi-tenant serving (repro.serving.tenants + HTTP).

Covers the :class:`TenantManager` registry (create/describe/delete,
quotas, write-ahead-log coupling, snapshot + log pruning), the HTTP
tenant routing (``tenant`` in the body or ``?tenant=`` on the URL,
default-tenant fallback that keeps the single-tenant wire format
working), the ``/tenants`` admin surface, the ``/healthz`` storage
section, and the isolation property: one tenant's re-finalize never
blocks another tenant's queries.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.serving import (QueryService, QuotaExceededError, TenantManager,
                           build_server)
from repro.storage import (BACKENDS, DirectoryBackend, SQLiteBackend,
                           TenantExistsError, UnknownTenantError)

DOMAIN = 8


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    if request.param == "json":
        built = DirectoryBackend(tmp_path / "store")
    else:
        built = SQLiteBackend(tmp_path / "store.db")
    yield built
    built.close()


def _rows(seed: int, n: int = 40) -> list:
    rng = np.random.default_rng(seed)
    return rng.integers(0, DOMAIN, size=(n, 2)).tolist()


def _tdg_config(**overrides) -> dict:
    config = {"mechanism": "TDG", "epsilon": 1.0, "seed": 11,
              "domain_size": DOMAIN}
    config.update(overrides)
    return config


# ----------------------------------------------------------------------
# TenantManager registry
# ----------------------------------------------------------------------
def test_manager_create_list_delete(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config())
    manager.create_tenant("b", _tdg_config(mechanism="HDG"))
    assert manager.tenant_names() == ["a", "b"]
    assert manager.service("b").mechanism_name == "HDG"
    rows = manager.list_tenants()
    assert [row["name"] for row in rows] == ["a", "b"]
    manager.delete_tenant("a")
    assert manager.tenant_names() == ["b"]
    with pytest.raises(UnknownTenantError):
        manager.service("a")


def test_manager_default_tenant_from_config(backend):
    manager = TenantManager(backend, default_config=_tdg_config())
    assert manager.tenant_names() == ["default"]
    # A second manager over the same backend recovers, not re-creates.
    again = TenantManager(backend, default_config=_tdg_config())
    assert again.tenant_names() == ["default"]


def test_manager_rejects_duplicate_and_bad_configs(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config())
    with pytest.raises(TenantExistsError):
        manager.create_tenant("a", _tdg_config())
    # A bad config must not leave a half-created tenant behind.
    with pytest.raises(ValueError):
        manager.create_tenant("bad", _tdg_config(mechanism="nope"))
    assert not backend.has_tenant("bad")


def test_manager_ingest_appends_wal_before_apply(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config())
    receipt = manager.ingest("a", _rows(0))
    assert receipt["tenant"] == "a"
    assert receipt["wal_seq"] == 1
    assert backend.pending_ingest("a")[0].rows == _rows(0)


def test_manager_failed_apply_rolls_back_wal_entry(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config())
    manager.ingest("a", _rows(0))
    # Mismatched width fails the in-memory apply after the append; the
    # entry must be discarded so recovery cannot replay it.
    with pytest.raises(Exception):
        manager.ingest("a", np.zeros((5, 3), dtype=np.int64))
    assert [e.seq for e in backend.pending_ingest("a")] == [1]


def test_manager_rejects_malformed_batches_before_wal(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config())
    with pytest.raises(ValueError, match="2-D"):
        manager.ingest("a", [1, 2, 3])
    assert backend.pending_ingest("a") == []


def test_manager_quota_enforced(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config(quota=60))
    manager.ingest("a", _rows(0, 40))
    with pytest.raises(QuotaExceededError):
        manager.ingest("a", _rows(1, 40))
    # The refused batch never reached the write-ahead log.
    assert [e.seq for e in backend.pending_ingest("a")] == [1]
    manager.ingest("a", _rows(1, 20))  # exactly at the quota is fine


def test_manager_snapshot_prunes_captured_log(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config())
    manager.ingest("a", _rows(0))
    manager.ingest("a", _rows(1))
    record = manager.save_snapshot("a")
    assert record.wal_seq == 2
    assert backend.pending_ingest("a") == []
    # New ingest after the snapshot continues the sequence.
    assert manager.ingest("a", _rows(2))["wal_seq"] == 3


def test_manager_keep_last_retention(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config(keep_last=2))
    manager.ingest("a", _rows(0))
    for _ in range(3):
        manager.save_snapshot("a")
    assert [r.version for r in backend.list_snapshots("a")] == [2, 3]


def test_manager_describe_tenant(backend):
    manager = TenantManager(backend)
    manager.create_tenant("a", _tdg_config(quota=100))
    manager.ingest("a", _rows(0, 40))
    manager.refinalize("a")
    description = manager.describe_tenant("a")
    assert description["name"] == "a"
    assert description["quota"] == 100
    assert description["quota_remaining"] == 60
    assert description["pending_ingest_log"] == 1
    assert description["status"]["ready"]
    assert json.dumps(description)  # JSON-shaped for the admin surface


def test_manager_recovers_tenants_at_construction(backend):
    first = TenantManager(backend)
    first.create_tenant("a", _tdg_config())
    first.ingest("a", _rows(0))
    first.refinalize("a")
    expected = first.service("a").query_wire([[[0, 0, 3], [1, 2, 5]]])["answers"]
    del first

    second = TenantManager(backend)
    assert second.tenant_names() == ["a"]
    service = second.service("a")
    assert service.reports_ingested == 40
    service.refinalize()
    assert service.query_wire([[[0, 0, 3], [1, 2, 5]]])["answers"] == expected


def test_manager_refinalize_isolated_per_tenant(backend):
    """One tenant's re-finalize must not block another's queries."""
    manager = TenantManager(backend)
    manager.create_tenant("slow", _tdg_config())
    manager.create_tenant("fast", _tdg_config(seed=3))
    manager.ingest("slow", _rows(0))
    manager.ingest("fast", _rows(1))
    manager.refinalize("fast")

    slow_service = manager.service("slow")
    release = threading.Event()
    original = slow_service._refinalize

    def stalled_refinalize():
        release.wait(timeout=10.0)
        original()

    slow_service._refinalize = stalled_refinalize
    slow_thread = threading.Thread(target=manager.refinalize,
                                   args=("slow",))
    slow_thread.start()
    try:
        # While "slow" is stuck mid-refinalize, "fast" answers freely.
        start = time.monotonic()
        answers = manager.service("fast").query_wire([[[0, 0, 3]]])["answers"]
        elapsed = time.monotonic() - start
        assert answers is not None
        assert elapsed < 5.0
        # ...and "fast" can even ingest + snapshot concurrently.
        manager.ingest("fast", _rows(2))
        manager.save_snapshot("fast")
    finally:
        release.set()
        slow_thread.join(timeout=10.0)
    assert not slow_thread.is_alive()
    assert manager.service("slow").is_ready


def test_manager_storage_status(backend):
    manager = TenantManager(backend, default_config=_tdg_config())
    manager.ingest("default", _rows(0))
    status = manager.storage_status()
    assert status["backend"] == backend.name
    assert status["tenants"] == 1
    assert status["pending_ingest_log"] == 1


# ----------------------------------------------------------------------
# HTTP: tenant routing, /tenants surface, healthz storage section
# ----------------------------------------------------------------------
def _http(port, path, payload=None, method=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                     data=data, method=method)
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _http_error(port, path, payload=None, method=None):
    try:
        _http(port, path, payload, method)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    raise AssertionError("expected an HTTP error")


@pytest.fixture()
def mt_server(tmp_path):
    backend = SQLiteBackend(tmp_path / "serving.db")
    manager = TenantManager(backend, default_config=_tdg_config())
    server = build_server(tenant_manager=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield manager, server.server_address[1]
    server.shutdown()
    server.server_close()
    backend.close()


def test_http_tenants_round_trip(mt_server):
    _, port = mt_server
    created = _http(port, "/tenants", {"name": "acme",
                                       "config": _tdg_config(seed=5)})
    assert created["name"] == "acme"
    listing = _http(port, "/tenants")
    assert {row["name"] for row in listing["tenants"]} == {"acme", "default"}
    detail = _http(port, "/tenants/acme")
    assert detail["config"]["seed"] == 5
    assert _http(port, "/tenants/acme", method="DELETE") == {
        "deleted": "acme"}
    assert _http_error(port, "/tenants/acme")[0] == 404


def test_http_duplicate_tenant_conflicts(mt_server):
    _, port = mt_server
    status, body = _http_error(port, "/tenants",
                               {"name": "default", "config": {}})
    assert status == 409
    assert body["code"] == "conflict"


def test_http_interleaved_two_tenant_serving(mt_server):
    """Two tenants ingest and query interleaved without crosstalk."""
    _, port = mt_server
    _http(port, "/tenants", {"name": "acme", "config": _tdg_config(seed=5)})
    for seed in (0, 1):
        _http(port, "/ingest", {"rows": _rows(seed)})  # default tenant
        _http(port, "/ingest", {"tenant": "acme", "rows": _rows(seed + 10)})
    _http(port, "/refinalize", {})
    _http(port, "/refinalize", {"tenant": "acme"})
    workload = [[[0, 0, 3], [1, 2, 5]]]
    default_answers = _http(port, "/query", {"queries": workload})["answers"]
    acme_answers = _http(port, "/query", {"tenant": "acme",
                                          "queries": workload})["answers"]
    # Different seeds and different reports: distinct estimates.
    assert default_answers != acme_answers
    health = _http(port, "/healthz")
    assert health["reports_ingested"] == 80  # default tenant's status
    assert health["storage"]["backend"] == "sqlite"
    assert health["storage"]["tenants"] == 2
    assert health["storage"]["pending_ingest_log"] == 4
    # The ?tenant= query-parameter form routes GETs too.
    acme_health = _http(port, f"/healthz?tenant=acme")
    assert acme_health["tenant"] == "acme"


def test_http_single_tenant_wire_format_unchanged(mt_server):
    """Requests that never mention tenants behave exactly like the
    single-service server: ingest -> refinalize -> query -> snapshot."""
    _, port = mt_server
    _http(port, "/ingest", {"rows": _rows(0)})
    _http(port, "/refinalize", {})
    answered = _http(port, "/query", {"queries": [[[0, 0, 3]]]})
    assert "answers" in answered and answered["count"] == 1
    written = _http(port, "/snapshot", {})
    assert written["version"] == 1
    listing = _http(port, "/snapshot")
    assert listing["versions"] == [1]
    assert listing["snapshots"][0]["tenant"] == "default"


def test_http_quota_maps_to_429(mt_server):
    _, port = mt_server
    _http(port, "/tenants", {"name": "tiny",
                             "config": _tdg_config(quota=10)})
    status, body = _http_error(port, "/ingest",
                               {"tenant": "tiny", "rows": _rows(0, 40)})
    assert status == 429
    assert body["code"] == "quota-exceeded"


def test_http_unknown_tenant_maps_to_404(mt_server):
    _, port = mt_server
    for path, payload in (("/ingest", {"tenant": "ghost",
                                       "rows": _rows(0)}),
                          ("/query", {"tenant": "ghost",
                                      "queries": [[[0, 0, 3]]]}),
                          ("/refinalize", {"tenant": "ghost"}),
                          ("/snapshot", {"tenant": "ghost"})):
        status, body = _http_error(port, path, payload)
        assert status == 404, path
        assert body["code"] == "unknown-tenant", path


def test_http_snapshot_restart_round_trip(tmp_path):
    """Snapshots written over HTTP recover on the next server start."""
    db = tmp_path / "serving.db"
    with SQLiteBackend(db) as backend:
        manager = TenantManager(backend, default_config=_tdg_config())
        manager.ingest("default", _rows(0))
        manager.refinalize("default")
        expected = manager.service("default").query_wire([[[0, 0, 3]]])["answers"]
        manager.save_snapshot("default")
    with SQLiteBackend(db) as backend:
        manager = TenantManager(backend)
        answers = manager.service("default").query_wire([[[0, 0, 3]]])["answers"]
        assert answers == expected


def test_build_server_requires_exactly_one_mode(tmp_path):
    with pytest.raises(ValueError, match="exactly one"):
        build_server()
    service = QueryService("TDG", 1.0, seed=0, domain_size=DOMAIN)
    with SQLiteBackend(tmp_path / "x.db") as backend:
        manager = TenantManager(backend)
        with pytest.raises(ValueError, match="exactly one"):
            build_server(service, tenant_manager=manager)


# ----------------------------------------------------------------------
# CLI smoke: tenants verb against a real backend
# ----------------------------------------------------------------------
def test_cli_tenants_lifecycle(tmp_path, capsys):
    db = str(tmp_path / "repro.db")
    assert main(["tenants", "create", "--backend", "sqlite", "--store", db,
                 "--name", "acme", "--mechanism", "LHIO",
                 "--ingest-mode", "refit", "--quota", "1000",
                 "--domain-size", str(DOMAIN)]) == 0
    assert "created tenant 'acme'" in capsys.readouterr().out
    assert main(["tenants", "list", "--backend", "sqlite",
                 "--store", db]) == 0
    out = capsys.readouterr().out
    assert "acme" in out and "LHIO" in out
    assert main(["tenants", "inspect", "--backend", "sqlite", "--store", db,
                 "--name", "acme"]) == 0
    assert "'quota': 1000" in capsys.readouterr().out
    assert main(["tenants", "create", "--backend", "sqlite", "--store", db,
                 "--name", "acme", "--mechanism", "TDG"]) == 2
    capsys.readouterr()
    assert main(["tenants", "delete", "--backend", "sqlite", "--store", db,
                 "--name", "acme"]) == 0
    assert "deleted tenant 'acme'" in capsys.readouterr().out


def test_cli_serve_multi_tenant_smoke(tmp_path, capsys):
    db = str(tmp_path / "repro.db")
    assert main(["serve", "--backend", "sqlite", "--store", db,
                 "--port", "0", "--max-requests", "0",
                 "--domain-size", str(DOMAIN)]) == 0
    out = capsys.readouterr().out
    assert "tenant(s)" in out and "/tenants" in out


def test_cli_serve_backend_requires_store(capsys):
    assert main(["serve", "--backend", "sqlite", "--port", "0",
                 "--max-requests", "0"]) == 2
    assert "--store" in capsys.readouterr().err
