"""Per-tenant circuit breaker gating degraded-mode recovery probes.

The classic three-state machine (closed → open → half-open) applied to
a tenant's write-ahead ingest path:

*closed*
    Normal operation.  Failures are counted; ``failure_threshold``
    *consecutive* failures trip the breaker open.
*open*
    The tenant is degraded: ingest is refused immediately (503 with
    ``Retry-After`` upstream) without touching the failing backend,
    while queries keep answering from the last finalized estimator.
    After ``reset_timeout`` seconds the breaker lets one probe
    through.
*half-open*
    Exactly one in-flight probe is allowed.  Success closes the
    breaker (tenant recovered); failure re-opens it and restarts the
    timeout.

The clock is injectable so tests drive state transitions without
sleeping.  All methods are thread-safe; the HTTP worker pool consults
one breaker per tenant concurrently.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 30.0, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        self.open_count = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (time-aware)."""
        with self._lock:
            return self._observe()

    def _observe(self) -> str:
        """Current state, promoting open → half-open when the timeout
        has elapsed.  Caller holds the lock."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._state = HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """Whether the caller may attempt the protected operation.

        Closed: always.  Open: no (until the reset timeout).
        Half-open: yes for exactly one caller at a time — that call is
        the recovery probe; concurrent callers are refused until it
        reports success or failure.
        """
        with self._lock:
            state = self._observe()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """The protected operation succeeded: close and reset."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """The protected operation failed: count, maybe trip open."""
        with self._lock:
            state = self._observe()
            self._consecutive_failures += 1
            should_open = (state == HALF_OPEN
                           or self._consecutive_failures
                           >= self.failure_threshold)
            if should_open:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self.open_count += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def retry_after(self) -> float:
        """Seconds until the next probe is allowed (0 when callable now)."""
        with self._lock:
            state = self._observe()
            if state == OPEN:
                return max(0.0, self.reset_timeout
                           - (self._clock() - self._opened_at))
            return 0.0

    def status(self) -> dict:
        """Health-document summary (``/healthz``, ``/readyz``)."""
        with self._lock:
            state = self._observe()
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "open_count": self.open_count,
                "retry_after": (max(0.0, self.reset_timeout
                                    - (self._clock() - self._opened_at))
                                if state == OPEN else 0.0),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker({self.state}, " \
               f"failures={self._consecutive_failures})"
