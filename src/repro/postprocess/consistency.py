"""Cross-grid consistency enforcement (Phase 2, Section 4.2).

Each attribute ``a`` appears in several grids — its own 1-D grid (HDG
only) and the ``d - 1`` 2-D grids of pairs containing it.  Because every
grid is estimated from an independent user group, the marginal frequencies
of ``a`` implied by different grids disagree.  The consistency step
computes, for each coarse bucket ``j`` of ``a`` (the 2-D granularity
``g2`` defines the buckets), the variance-optimal weighted average of the
per-grid bucket totals and then shifts each grid's cells so its bucket
total matches the average.

The weights follow the analysis in the paper / CALM: a grid in which the
bucket total is the sum of ``|S_i|`` cells contributes weight proportional
to ``1 / |S_i|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GridView:
    """A view of one grid's cells as seen from a single attribute.

    Parameters
    ----------
    frequencies:
        The grid's cell-frequency array (1-D of length ``g1`` for a 1-D
        grid, 2-D of shape ``(g2, g2)`` for a 2-D grid).  Updated in place
        by :func:`enforce_attribute_consistency`.
    axis:
        Which axis of ``frequencies`` corresponds to the attribute being
        reconciled (ignored for 1-D grids).
    cells_per_bucket:
        How many of the attribute's own cells fall inside one consistency
        bucket.  With a common bucket count of ``g2``, a 2-D grid has 1
        cell per bucket along the attribute axis and a 1-D grid has
        ``g1 / g2`` cells per bucket.
    """

    frequencies: np.ndarray
    axis: int
    cells_per_bucket: int

    def bucket_totals(self, n_buckets: int) -> np.ndarray:
        """Sum of frequencies per consistency bucket along the attribute axis."""
        moved = np.moveaxis(self.frequencies, self.axis, 0)
        attr_cells = moved.shape[0]
        if attr_cells != n_buckets * self.cells_per_bucket:
            raise ValueError(
                f"grid has {attr_cells} cells along the attribute axis, which is "
                f"not {n_buckets} buckets x {self.cells_per_bucket} cells")
        grouped = moved.reshape(n_buckets, self.cells_per_bucket, -1)
        return grouped.sum(axis=(1, 2))

    def cells_contributing(self) -> int:
        """Number of cells whose frequencies sum into one bucket total (|S_i|)."""
        other = self.frequencies.size // self.frequencies.shape[self.axis]
        return self.cells_per_bucket * other

    def apply_adjustment(self, bucket_deltas: np.ndarray) -> None:
        """Distribute each bucket's total adjustment equally over its cells."""
        moved = np.moveaxis(self.frequencies, self.axis, 0)
        n_buckets = bucket_deltas.shape[0]
        grouped = moved.reshape(n_buckets, self.cells_per_bucket, -1)
        per_cell = bucket_deltas / (self.cells_per_bucket * grouped.shape[2])
        grouped += per_cell[:, None, None]
        # ``moved``/``grouped`` are views, so the original array is updated.


def enforce_attribute_consistency(views: list[GridView], n_buckets: int) -> np.ndarray:
    """Make all grids agree on one attribute's bucket totals.

    Returns the consensus bucket totals (mainly for testing/inspection);
    the grids referenced by ``views`` are modified in place.
    """
    if not views:
        raise ValueError("need at least one grid view")
    totals = np.stack([view.bucket_totals(n_buckets) for view in views])
    weights = np.array([1.0 / view.cells_contributing() for view in views])
    weights = weights / weights.sum()
    consensus = weights @ totals
    for view, current in zip(views, totals):
        view.apply_adjustment(consensus - current)
    return consensus
