"""Figures 13-14: 0-count (ω = 0.3) and non-0-count (ω = 0.7) high-λ queries.

Paper shape: on 0-count queries every mechanism achieves very small error
(post-processing pulls estimates toward zero); on non-0-count queries HDG
typically obtains the best results.
"""

from _scale import current_scale, report

from repro.experiments import appendix, figures


def bench_figures_13_14(benchmark):
    scale = current_scale()
    quick = scale.n_users <= 100_000
    n_attributes = 8 if quick else 10
    dims = (6, 8) if quick else (6, 7, 8, 9, 10)
    n_queries = max(10, scale.n_queries // 5)

    def run():
        zero = appendix.figure_13_14_count_conditioned(
            datasets=scale.datasets[:1], query_dimensions=dims, zero_count=True,
            methods=("Uni", "MSW", "CALM", "LHIO", "TDG", "HDG"),
            n_users=scale.n_users, n_attributes=n_attributes,
            domain_size=scale.domain_size, epsilon=1.0, n_queries=n_queries,
            n_repeats=scale.n_repeats, seed=0)
        non_zero = appendix.figure_13_14_count_conditioned(
            datasets=scale.datasets[:1], query_dimensions=dims, zero_count=False,
            methods=("Uni", "MSW", "CALM", "LHIO", "TDG", "HDG"),
            n_users=scale.n_users, n_attributes=n_attributes,
            domain_size=scale.domain_size, epsilon=1.0, n_queries=n_queries,
            n_repeats=scale.n_repeats, seed=0)
        return zero, non_zero

    zero, non_zero = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (figures.format_figure_results(zero, "Figure 13: 0-count queries")
            + "\n" + figures.format_figure_results(non_zero,
                                                   "Figure 14: non-0-count queries"))
    report("fig13_14_zero_count", text)
    for dataset, sweep in zero.items():
        series = sweep.series()
        # All LDP mechanisms achieve small error on 0-count workloads.
        assert max(series["HDG"]) < 0.2
