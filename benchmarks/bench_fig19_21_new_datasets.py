"""Figures 19-21: ε, ω and d sweeps on the Loan and Acs datasets.

Paper shape: HDG consistently performs better than the baselines on both
additional real datasets, confirming its robustness across data types.
"""

from _scale import current_scale, report

from repro.experiments import appendix, figures


def bench_figures_19_21(benchmark):
    scale = current_scale()
    quick = scale.n_users <= 100_000

    def run():
        return appendix.figure_19_21_new_datasets(
            epsilons=scale.epsilons if not quick else scale.epsilons[:3],
            volumes=scale.volumes if not quick else (0.3, 0.5, 0.7),
            attribute_counts=(4, 6) if quick else (4, 5, 6, 7, 8, 9, 10),
            query_dimensions=(2,), n_users=scale.n_users,
            n_attributes=scale.n_attributes, domain_size=scale.domain_size,
            n_queries=scale.n_queries, n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, per_panel in results.items():
        lines.append(figures.format_figure_results(per_panel, name))
    report("fig19_21_new_datasets", "\n".join(lines))
    epsilon_panels = results["fig19_epsilon"]
    for (dataset, dimension), sweep in epsilon_panels.items():
        series = sweep.series()
        assert series["HDG"][-1] < series["Uni"][-1]
