"""Resilience layer: fault injection, retries/deadlines, degradation.

PR 7 made the serving tier durable; this package makes it *fault
tolerant*.  Production database systems treat continuous partial
failure as a design axis, and the reproduction stack takes the same
posture: every storage/serving failure mode is injectable, bounded by
a deadline or retry policy, and degrades gracefully instead of
crashing.

:mod:`repro.resilience.errors`
    The failure taxonomy — :class:`TransientStorageError`,
    :class:`PermanentStorageError`, :class:`DegradedServiceError`,
    :class:`DeadlineExceededError` — and :func:`classify_error`,
    which maps raw backend exceptions (locked SQLite databases,
    ``EINTR`` I/O) onto retryable vs. fatal.
:mod:`repro.resilience.retry`
    :class:`RetryPolicy` (exponential backoff, *seeded* jitter,
    bounded attempts) and :class:`Deadline` (a monotonic wall-clock
    budget carried through storage call chains).
:mod:`repro.resilience.breaker`
    :class:`CircuitBreaker` — the closed → open → half-open machine
    gating each tenant's degraded-mode recovery probes.
:mod:`repro.resilience.faults`
    :class:`FaultInjectingBackend` + :class:`FaultPlan` — seeded,
    scriptable fault schedules (Nth-write failures, locked-db storms,
    latency, torn write-ahead-log appends) against any real backend,
    so the chaos tests and benchmarks are deterministic.

:class:`~repro.serving.TenantManager` threads all four through the
serving tier: WAL appends retry transient errors, persistent failure
opens the tenant's breaker (queries keep answering, ingest answers
503 + ``Retry-After``), and tenants whose recovery fails at startup
are quarantined instead of refusing to start the server.  See
docs/resilience.md for the taxonomy, the degraded-mode contract and
the fault-plan cookbook.
"""

from .breaker import CircuitBreaker
from .errors import (DeadlineExceededError, DegradedServiceError,
                     PermanentStorageError, TransientStorageError,
                     classify_error, is_transient)
from .faults import FaultInjectingBackend, FaultPlan, FaultSpec
from .retry import Deadline, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "DegradedServiceError",
    "FaultInjectingBackend",
    "FaultPlan",
    "FaultSpec",
    "PermanentStorageError",
    "RetryPolicy",
    "TransientStorageError",
    "classify_error",
    "is_transient",
]
