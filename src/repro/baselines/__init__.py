"""Baseline mechanisms the paper compares against: Uni, MSW, CALM, HIO, LHIO."""

from .calm import CALM
from .hierarchy import HierarchyNode, IntervalHierarchy, effective_branching
from .hio import HIO
from .lhio import LHIO
from .msw import MSW
from .uniform import Uniform

__all__ = [
    "CALM",
    "HIO",
    "HierarchyNode",
    "IntervalHierarchy",
    "LHIO",
    "MSW",
    "Uniform",
    "effective_branching",
]
