"""Abstract interface shared by all LDP frequency oracles.

A frequency oracle estimates, under ε-LDP, the frequency (fraction of
users) of every value in a categorical domain ``[c]`` given one report per
user.  Every concrete oracle in this package implements
:class:`FrequencyOracle` and exposes a single high-level entry point,
:meth:`FrequencyOracle.estimate_frequencies`, so the grid approaches and
baselines can swap oracles freely.

Every oracle's server side is a *sum over user reports*, so it factors
into two halves:

* :meth:`FrequencyOracle.accumulate` turns a batch of user values into a
  :class:`SupportAccumulator` — raw per-candidate support counts plus the
  report count.  Accumulators from disjoint user batches are exactly
  additive (:meth:`SupportAccumulator.merge`), which is what makes the
  whole collection pipeline shard-mergeable.
* :meth:`FrequencyOracle.estimate_from_accumulator` debiases merged
  support counts into frequency estimates.  It is deterministic, so
  merging shards and estimating once is an unbiased drop-in for the
  one-shot protocol.
"""

from __future__ import annotations

import abc
import dataclasses
import math

import numpy as np


@dataclasses.dataclass(eq=False)
class SupportAccumulator:
    """Additive aggregate-side state of a frequency oracle.

    Parameters
    ----------
    supports:
        Float array of per-candidate support counts.  The meaning of one
        "support" is oracle-specific (a matching report for GRR/OLH, a
        report landing in an output bucket for Square Wave) but is always
        a plain count over users, hence additive across disjoint batches.
    n_reports:
        Number of user reports the supports were counted over.
    """

    supports: np.ndarray
    n_reports: int = 0

    def __post_init__(self) -> None:
        self.supports = np.asarray(self.supports, dtype=float)
        if self.supports.ndim != 1:
            raise ValueError("supports must be a 1-D count vector")
        self.n_reports = int(self.n_reports)
        if self.n_reports < 0:
            raise ValueError("n_reports must be non-negative")

    # ------------------------------------------------------------------
    # Shard algebra
    # ------------------------------------------------------------------
    def merge(self, other: "SupportAccumulator") -> "SupportAccumulator":
        """Add another batch's counts into this accumulator (in place).

        The addition writes into the existing ``supports`` buffer rather
        than rebinding it, so an accumulator whose buffer is a view over
        external storage (the distributed ingest tier binds slots to
        ``multiprocessing.shared_memory`` blocks) keeps publishing through
        that view across merges.
        """
        if other.supports.shape != self.supports.shape:
            raise ValueError(
                f"cannot merge accumulators over different candidate sets: "
                f"{self.supports.shape} vs {other.supports.shape}")
        self.supports += other.supports
        self.n_reports += other.n_reports
        return self

    def copy(self) -> "SupportAccumulator":
        return SupportAccumulator(self.supports.copy(), self.n_reports)

    def equals(self, other: "SupportAccumulator") -> bool:
        """Exact equality of counts (the shard-merge invariant checked in tests)."""
        return (self.n_reports == other.n_reports
                and self.supports.shape == other.supports.shape
                and bool(np.all(self.supports == other.supports)))

    # ------------------------------------------------------------------
    # Serialization (the pipeline's on-the-wire shard state)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"supports": self.supports.tolist(), "n_reports": self.n_reports}

    @classmethod
    def from_dict(cls, state: dict) -> "SupportAccumulator":
        return cls(np.asarray(state["supports"], dtype=float),
                   int(state["n_reports"]))

    @classmethod
    def empty(cls, size: int) -> "SupportAccumulator":
        return cls(np.zeros(int(size)), 0)


class FrequencyOracle(abc.ABC):
    """Base class for ε-LDP categorical frequency oracles.

    Parameters
    ----------
    epsilon:
        Privacy budget used by each user's single report.
    domain_size:
        Number of categories ``c``; user values are integers in ``[0, c)``.
    rng:
        Randomness source.  Passing an explicitly seeded generator makes the
        whole collection pipeline reproducible.
    """

    def __init__(self, epsilon: float, domain_size: int,
                 rng: np.random.Generator | None = None):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if domain_size < 2:
            raise ValueError(f"domain_size must be >= 2, got {domain_size}")
        self.epsilon = float(epsilon)
        self.domain_size = int(domain_size)
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Main API
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimate_frequencies(self, values: np.ndarray) -> np.ndarray:
        """Collect perturbed reports for ``values`` and estimate frequencies.

        Parameters
        ----------
        values:
            Integer array of true user values in ``[0, domain_size)``, one
            entry per reporting user.

        Returns
        -------
        numpy.ndarray
            Unbiased frequency estimates of length ``domain_size`` which sum
            to approximately 1 (they may be negative or exceed 1 before
            post-processing).
        """

    @abc.abstractmethod
    def variance(self, n: int, true_frequency: float = 0.0) -> float:
        """Theoretical per-value estimation variance for ``n`` users."""

    # ------------------------------------------------------------------
    # Shard-mergeable aggregation API
    # ------------------------------------------------------------------
    def accumulate(self, values: np.ndarray) -> SupportAccumulator:
        """Collect one batch of reports into an additive accumulator.

        Accumulators for disjoint user batches can be merged exactly
        (:meth:`SupportAccumulator.merge`) and debiased once at the end
        with :meth:`estimate_from_accumulator`; running the two halves
        back-to-back on a single batch reproduces
        :meth:`estimate_frequencies` exactly (same randomness draws).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded aggregation")

    def estimate_from_accumulator(self,
                                  accumulator: SupportAccumulator) -> np.ndarray:
        """Debias merged support counts into frequency estimates."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded aggregation")

    @property
    def supports_sharding(self) -> bool:
        """Whether this oracle implements the accumulate/estimate split."""
        return type(self).accumulate is not FrequencyOracle.accumulate

    # ------------------------------------------------------------------
    # Helpers shared by implementations
    # ------------------------------------------------------------------
    def _validate_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("values must be a 1-D array of user reports")
        if values.size == 0:
            raise ValueError("cannot estimate frequencies from zero users")
        if values.min() < 0 or values.max() >= self.domain_size:
            raise ValueError(
                "user values must lie in [0, domain_size); got range "
                f"[{values.min()}, {values.max()}] for domain {self.domain_size}"
            )
        return values

    @property
    def e_eps(self) -> float:
        """Convenience accessor for ``e^epsilon``."""
        return math.exp(self.epsilon)


def grr_variance(epsilon: float, domain_size: int, n: int) -> float:
    """Equation (2): variance of Generalized Randomized Response."""
    e_eps = math.exp(epsilon)
    return (domain_size - 2 + e_eps) / ((e_eps - 1) ** 2 * n)


def olh_variance(epsilon: float, n: int) -> float:
    """Equation (3): variance of Optimized Local Hash."""
    e_eps = math.exp(epsilon)
    return 4.0 * e_eps / ((e_eps - 1) ** 2 * n)
