"""Analytical error model from Section 4.5 and Appendix A.10 of the paper.

The guideline of Section 4.6 is derived from closed-form approximations of
the two dominant error sources when answering a range query from a grid:

* **Noise and sampling error** — each queried cell contributes the OLH
  estimation variance scaled by the group split, dominated by
  ``4 m e^eps / (n (e^eps - 1)^2)`` per cell (Equation (4) with the small
  ``m/n * f`` and sampling terms dropped).
* **Non-uniformity error** — cells that straddle the query boundary are
  answered under the uniformity assumption; the guideline models their
  squared contribution as ``(alpha1 / g1)^2`` for 1-D grids and
  ``(2 alpha2 / g2)^2`` for 2-D grids.

This module exposes those formulas directly so users can inspect the
trade-off the guideline optimises (and tests can verify that the guideline
really sits at the minimum of the modelled total error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.granularity import DEFAULT_ALPHA1, DEFAULT_ALPHA2


def cell_noise_variance(epsilon: float, n_group: int, n_groups: int = 1) -> float:
    """Dominant per-cell squared noise+sampling error (Section 4.5).

    ``n_group`` is the population of the reporting user group and
    ``n_groups`` the number of groups the overall population was divided
    into — expressed this way the quantity matches the paper's
    ``4 m e^eps / (n (e^eps - 1)^2)`` with ``n = n_group * n_groups``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if n_group < 1 or n_groups < 1:
        raise ValueError("population and group counts must be positive")
    e_eps = math.exp(epsilon)
    total_population = n_group * n_groups
    return 4.0 * n_groups * e_eps / (total_population * (e_eps - 1.0) ** 2)


def grid1d_squared_error(granularity: int, epsilon: float, n1: int, m1: int,
                         alpha1: float = DEFAULT_ALPHA1) -> float:
    """Modelled total squared error of a 1-D grid answer (Section 4.6).

    Assumes the average query interval covers half the domain, so roughly
    ``g1 / 2`` cells contribute noise: the noise term is
    ``2 g1 m1 e^eps / (n1 (e^eps - 1)^2)`` and the non-uniformity term is
    ``(alpha1 / g1)^2``.
    """
    if granularity < 1:
        raise ValueError("granularity must be positive")
    e_eps = math.exp(epsilon)
    noise = 2.0 * granularity * m1 * e_eps / (n1 * (e_eps - 1.0) ** 2)
    non_uniformity = (alpha1 / granularity) ** 2
    return noise + non_uniformity


def grid2d_squared_error(granularity: int, epsilon: float, n2: int, m2: int,
                         alpha2: float = DEFAULT_ALPHA2) -> float:
    """Modelled total squared error of a 2-D grid answer (Section 4.6).

    With each query interval covering half its domain, ``(g2 / 2)^2`` cells
    contribute noise and the boundary cells contribute
    ``(2 alpha2 / g2)^2`` of squared non-uniformity error.
    """
    if granularity < 1:
        raise ValueError("granularity must be positive")
    e_eps = math.exp(epsilon)
    noise = (granularity ** 2) * m2 * e_eps / (n2 * (e_eps - 1.0) ** 2)
    non_uniformity = (2.0 * alpha2 / granularity) ** 2
    return noise + non_uniformity


@dataclass(frozen=True)
class ErrorBreakdown:
    """Noise vs non-uniformity split of a modelled grid error."""

    noise: float
    non_uniformity: float

    @property
    def total(self) -> float:
        return self.noise + self.non_uniformity


def grid2d_error_breakdown(granularity: int, epsilon: float, n2: int, m2: int,
                           alpha2: float = DEFAULT_ALPHA2) -> ErrorBreakdown:
    """Separate the two components of :func:`grid2d_squared_error`."""
    e_eps = math.exp(epsilon)
    noise = (granularity ** 2) * m2 * e_eps / (n2 * (e_eps - 1.0) ** 2)
    non_uniformity = (2.0 * alpha2 / granularity) ** 2
    return ErrorBreakdown(noise=noise, non_uniformity=non_uniformity)


def best_modelled_granularity(candidates: list[int], error_fn, **kwargs) -> int:
    """The candidate granularity minimising a modelled error function.

    ``error_fn`` is :func:`grid1d_squared_error` or
    :func:`grid2d_squared_error`; keyword arguments are forwarded to it.
    Used to check that the closed-form guideline choice agrees with a brute
    force scan of the model.
    """
    if not candidates:
        raise ValueError("need at least one candidate granularity")
    return min(candidates, key=lambda g: error_fn(g, **kwargs))
