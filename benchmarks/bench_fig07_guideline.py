"""Figure 7: guideline-chosen granularities vs every fixed (g1, g2) combination.

Paper shape: guideline-configured HDG is consistently close to the best
fixed combination across ε values and datasets.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_7(benchmark):
    scale = current_scale()
    combos = ((8, 2), (8, 4), (16, 4), (32, 8)) if scale.n_users <= 100_000 \
        else figures.GUIDELINE_COMBINATIONS

    def run():
        return figures.figure_7_guideline(
            datasets=scale.datasets[:2], epsilons=scale.epsilons,
            combinations=combos, n_users=scale.n_users,
            n_attributes=scale.n_attributes, domain_size=scale.domain_size,
            volume=0.5, n_queries=scale.n_queries,
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig07_guideline",
           figures.format_figure_results(results, "Figure 7: guideline verification"))
    for dataset, sweep in results.items():
        series = sweep.series()
        fixed = {name: maes for name, maes in series.items() if name != "HDG"}
        for position in range(len(sweep.values)):
            best_fixed = min(maes[position] for maes in fixed.values())
            # The guideline choice stays within a small factor of the best
            # fixed combination at every epsilon (paper: "reasonably well for
            # all epsilon values", not necessarily the single best).
            assert series["HDG"][position] <= best_fixed * 3.0 + 0.02
