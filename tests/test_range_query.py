"""Tests for the range-query model."""

import pytest

from repro.queries import Predicate, RangeQuery


def test_predicate_basic():
    predicate = Predicate(attribute=2, low=3, high=7)
    assert predicate.width == 5
    assert predicate.covers(3)
    assert predicate.covers(7)
    assert not predicate.covers(8)


def test_predicate_validation():
    with pytest.raises(ValueError):
        Predicate(attribute=-1, low=0, high=1)
    with pytest.raises(ValueError):
        Predicate(attribute=0, low=5, high=2)
    with pytest.raises(ValueError):
        Predicate(attribute=0, low=-1, high=2)


def test_query_dimension_and_attributes():
    query = RangeQuery((Predicate(3, 0, 1), Predicate(1, 2, 5)))
    assert query.dimension == 2
    # Attributes come back sorted regardless of construction order.
    assert query.attributes == (1, 3)
    assert query.interval(1) == (2, 5)
    assert query.interval(3) == (0, 1)


def test_query_rejects_duplicate_attributes():
    with pytest.raises(ValueError):
        RangeQuery((Predicate(0, 0, 1), Predicate(0, 2, 3)))


def test_query_rejects_empty():
    with pytest.raises(ValueError):
        RangeQuery(())


def test_from_dict():
    query = RangeQuery.from_dict({0: (1, 3), 2: (0, 7)})
    assert query.dimension == 2
    assert query.interval(2) == (0, 7)


def test_interval_of_unrestricted_attribute_raises():
    query = RangeQuery.from_dict({0: (1, 3)})
    with pytest.raises(KeyError):
        query.interval(5)


def test_restrict_projects_predicates():
    query = RangeQuery.from_dict({0: (1, 3), 1: (0, 7), 4: (2, 2)})
    projected = query.restrict((0, 4))
    assert projected.attributes == (0, 4)
    assert projected.interval(4) == (2, 2)
    with pytest.raises(KeyError):
        query.restrict((0, 2))


def test_pairwise_subqueries_count():
    query = RangeQuery.from_dict({0: (0, 1), 1: (2, 3), 2: (4, 5), 3: (6, 7)})
    subqueries = query.pairwise_subqueries()
    assert len(subqueries) == 6  # C(4, 2)
    pairs = {sub.attributes for sub in subqueries}
    assert (0, 1) in pairs and (2, 3) in pairs


def test_pairwise_subqueries_requires_two_dims():
    query = RangeQuery.from_dict({0: (0, 1)})
    with pytest.raises(ValueError):
        query.pairwise_subqueries()


def test_volume():
    query = RangeQuery.from_dict({0: (0, 7), 1: (0, 3)})
    assert query.volume(16) == pytest.approx((8 / 16) * (4 / 16))
    full = RangeQuery.from_dict({0: (0, 15)})
    assert full.volume(16) == pytest.approx(1.0)


def test_queries_are_hashable_and_comparable():
    q1 = RangeQuery.from_dict({0: (1, 3), 1: (0, 7)})
    q2 = RangeQuery.from_dict({1: (0, 7), 0: (1, 3)})
    assert q1 == q2
    assert hash(q1) == hash(q2)
