"""Phase 2 of TDG/HDG: removing negativity and inconsistency.

The aggregator alternates two steps over the collected grids:

* **Non-negativity** — Norm-Sub on each grid's cell frequencies, making
  them non-negative and summing to 1.
* **Consistency** — for each attribute, the bucket totals (at the 2-D
  granularity ``g2``) implied by every grid containing the attribute are
  replaced by their variance-optimal weighted average.

The two steps can undo each other slightly, so they are interleaved for a
few rounds and the process ends with a non-negativity step (required
because Algorithm 1's multiplicative updates need non-negative inputs).
"""

from __future__ import annotations

from ..postprocess import GridView, enforce_attribute_consistency, norm_sub
from .grid import Grid1D, Grid2D


def apply_norm_sub(grids_1d: dict[int, Grid1D],
                   grids_2d: dict[tuple[int, int], Grid2D]) -> None:
    """Norm-Sub every grid's frequencies in place."""
    for grid in grids_1d.values():
        grid.set_frequencies(norm_sub(grid.frequencies))
    for grid in grids_2d.values():
        grid.set_frequencies(norm_sub(grid.frequencies))


def attribute_views(attribute: int, grids_1d: dict[int, Grid1D],
                    grids_2d: dict[tuple[int, int], Grid2D],
                    n_buckets: int) -> list[GridView]:
    """Collect consistency views of every grid containing ``attribute``.

    The consistency buckets are the ``g2`` coarse intervals of the
    attribute; a 2-D grid contributes one cell per bucket along the
    attribute's axis while a 1-D grid contributes ``g1 / g2`` cells.
    """
    views: list[GridView] = []
    if attribute in grids_1d:
        grid = grids_1d[attribute]
        if grid.granularity % n_buckets != 0:
            raise ValueError(
                f"1-D granularity {grid.granularity} is not a multiple of the "
                f"bucket count {n_buckets}")
        # mutable_frequencies drops each grid's prefix-sum index, since the
        # consistency step adjusts the arrays in place.
        views.append(GridView(frequencies=grid.mutable_frequencies(), axis=0,
                              cells_per_bucket=grid.granularity // n_buckets))
    for (attr_a, attr_b), grid in grids_2d.items():
        if attribute == attr_a:
            axis = 0
        elif attribute == attr_b:
            axis = 1
        else:
            continue
        views.append(GridView(frequencies=grid.mutable_frequencies(), axis=axis,
                              cells_per_bucket=1))
    return views


def apply_consistency(n_attributes: int, grids_1d: dict[int, Grid1D],
                      grids_2d: dict[tuple[int, int], Grid2D],
                      n_buckets: int) -> None:
    """Run the attribute-by-attribute consistency step once."""
    for attribute in range(n_attributes):
        views = attribute_views(attribute, grids_1d, grids_2d, n_buckets)
        if len(views) >= 2:
            enforce_attribute_consistency(views, n_buckets)


def run_phase2(n_attributes: int, grids_1d: dict[int, Grid1D],
               grids_2d: dict[tuple[int, int], Grid2D], n_buckets: int,
               rounds: int = 3) -> None:
    """Full Phase 2: interleave both steps, ending with non-negativity."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    for _ in range(rounds):
        apply_norm_sub(grids_1d, grids_2d)
        apply_consistency(n_attributes, grids_1d, grids_2d, n_buckets)
    apply_norm_sub(grids_1d, grids_2d)
