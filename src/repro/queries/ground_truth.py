"""Exact (non-private) query answering used as the evaluation baseline.

The utility metric in the paper compares each mechanism's estimate against
the true query answer computed directly on the raw dataset; this module
provides that ground truth, vectorised over numpy so full workloads of
hundreds of queries stay cheap even for millions of records.

Range workloads keep the flat float-vector interface
(:func:`answer_workload`); the typed IR kinds — marginal, point, count,
top-k — are evaluated through :func:`evaluate_query` /
:func:`evaluate_workload`, which return the same typed result objects
the mechanisms' planner path produces so estimates and truths can be
scored pairwise (:func:`repro.metrics.result_error`).
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from .ir import (DistributionResult, MarginalQuery, PointQuery,
                 PredicateCountQuery, QueryResult, ScalarResult, TopKQuery,
                 TopKResult, query_kind)
from .range_query import RangeQuery


def answer_query(dataset: Dataset, query: RangeQuery) -> float:
    """Exact answer of one range query: fraction of matching records."""
    mask = np.ones(dataset.n_users, dtype=bool)
    for predicate in query.predicates:
        column = dataset.column(predicate.attribute)
        mask &= (column >= predicate.low) & (column <= predicate.high)
    return float(mask.mean())


def answer_workload(dataset: Dataset, queries: list[RangeQuery]) -> np.ndarray:
    """Exact answers for a list of range queries.

    Typed IR workloads (marginal/point/count/top-k results are not
    scalars) go through :func:`evaluate_workload` instead.
    """
    for position, query in enumerate(queries):
        if not isinstance(query, RangeQuery):
            raise TypeError(
                f"answer_workload only takes range queries; query {position} "
                f"is a {query_kind(query)} query — use evaluate_workload for "
                "typed IR workloads")
    return np.array([answer_query(dataset, q) for q in queries])


def evaluate_query(dataset: Dataset, query) -> QueryResult:
    """Exact typed answer of one IR query (any kind).

    The result mirrors what the mechanisms' planner path produces for
    the same query, with two ground-truth extras: a count query with no
    explicit population is scaled by the dataset's own size, and a
    top-k result carries the full true marginal table so estimated
    selections can be scored cell-by-cell.
    """
    if isinstance(query, RangeQuery):
        return ScalarResult(query, answer_query(dataset, query))
    if isinstance(query, PointQuery):
        return ScalarResult(query, answer_query(dataset, query.as_range()))
    if isinstance(query, PredicateCountQuery):
        population = (query.population if query.population is not None
                      else dataset.n_users)
        fraction = answer_query(dataset, query.as_range())
        return ScalarResult(query, fraction * population,
                            population=population)
    if isinstance(query, MarginalQuery):
        return DistributionResult(query, dataset.marginal_table(query.attributes))
    if isinstance(query, TopKQuery):
        # Deferred import: the planner imports this module's siblings.
        from .planner import top_k_cells
        table = dataset.marginal_table(query.attributes)
        cells, values = top_k_cells(table, query.k)
        return TopKResult(query, cells, values, distribution=table)
    raise TypeError(f"cannot evaluate {type(query).__name__} exactly")


def evaluate_workload(dataset: Dataset, queries: list) -> list[QueryResult]:
    """Exact typed answers for a mixed IR workload."""
    return [evaluate_query(dataset, query) for query in queries]


def answer_query_from_joint(joint: np.ndarray, query: RangeQuery,
                            attribute_order: tuple[int, ...]) -> float:
    """Answer a query from an exact joint distribution table.

    ``joint`` is an array whose axes correspond, in order, to the
    attributes listed in ``attribute_order``; unrestricted attributes are
    summed out.  Used by tests to cross-check the record-level path.
    """
    index = []
    for attribute in attribute_order:
        if attribute in query.attributes:
            low, high = query.interval(attribute)
            index.append(slice(low, high + 1))
        else:
            index.append(slice(None))
    return float(joint[tuple(index)].sum())
