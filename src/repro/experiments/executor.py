"""Parallel, resumable execution of experiment-cell grids.

``run_experiment`` and ``sweep_parameter`` decompose into a grid of
independent **cells** — one per (configuration point, repetition,
mechanism) — because every cell derives all of its randomness from the
configuration seed alone:

* dataset:   ``default_rng(seed + 1_000_003 * repeat)``
* workload:  ``default_rng(seed + 7_000_003 * repeat + 17)``
* mechanism: ``default_rng(seed + 31 * repeat + position)``

No cell reads another cell's RNG stream, so executing them on a process
pool in any order reproduces the sequential loop bit-for-bit.  The
executor partitions pending cells into one contiguous chunk per worker
process and ships each chunk as a single task, so every worker is
dispatched exactly once — per-cell pickling round-trips and task
hand-off latency no longer dominate small sweeps.  Only the (small)
configuration dataclasses cross the boundary — datasets and workloads
are rebuilt worker-side from their seeds and memoized per worker
(:mod:`repro.experiments.cache`), which chunking exploits: contiguous
cells of one repetition share a worker and hit its warm memos; a
finished cell returns one float and one ``n_queries``-length error
vector.

With a :class:`~repro.experiments.cache.ResultCache`, completed cells
are skipped entirely on re-runs: the parent process resolves hits
before scheduling, stores misses as workers finish, and an interrupted
sweep resumes from whatever cells it completed.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import pickle
import warnings
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..metrics import (absolute_errors, mean_absolute_error, per_kind_errors,
                       workload_result_errors)
from ..queries import RangeQuery, query_kind
from .cache import (CellResult, ResultCache, _MemoStore, cell_key,
                    config_fingerprint, memoized_dataset, memoized_truths,
                    memoized_workload, true_answers)
from .config import ExperimentConfig

#: Signature of the optional workload override: (config, dataset, repeat).
WorkloadFactory = Callable[..., list]

#: Per-process memo of factory-built workloads and their exact answers,
#: so a worker evaluating several mechanisms of one repetition builds
#: the factory workload (and answers it over the full dataset) once.
#: Keyed by (config, repeat, factory identity); sound because parallel
#: execution already requires factories to be deterministic in those
#: inputs.
_factory_inputs_memo = _MemoStore(max_entries=4)


def _factory_identity(factory: WorkloadFactory) -> str:
    return (f"{getattr(factory, '__module__', '?')}"
            f".{getattr(factory, '__qualname__', repr(factory))}")


def score_workload(queries: list, estimates, truths) -> CellResult:
    """Fold one cell's estimates and truths into a :class:`CellResult`.

    Pure range workloads score exactly as before (flat absolute
    errors); mixed typed workloads score each result against its typed
    truth (:func:`repro.metrics.result_error`) and additionally record
    the query kinds and per-kind mean errors.  ``method``/``repeat``
    are filled by the caller.
    """
    if any(not isinstance(query, RangeQuery) for query in queries):
        errors = workload_result_errors(estimates, truths)
        return CellResult(method="", repeat=0, mae=float(errors.mean()),
                          per_query_errors=errors,
                          query_kinds=[query_kind(query) for query in queries],
                          per_kind_mae=per_kind_errors(queries, errors))
    return CellResult(method="", repeat=0,
                      mae=mean_absolute_error(estimates, truths),
                      per_query_errors=absolute_errors(estimates, truths))


@dataclass(frozen=True)
class Cell:
    """One schedulable unit: a mechanism at one config point and repetition."""

    config_index: int
    repeat: int
    position: int
    method: str


def evaluate_cell(config: ExperimentConfig, repeat: int, position: int,
                  method: str,
                  workload_factory: WorkloadFactory | None = None,
                  queries: list | None = None,
                  truths: np.ndarray | None = None) -> CellResult:
    """Execute one cell exactly as the sequential loop body does.

    ``queries``/``truths`` may be passed to reuse already-built inputs
    (the in-process path builds a factory workload and its exact answers
    once per repetition); otherwise both are rebuilt from the cell's
    seeds.
    """
    # Imported lazily: the runner imports this module at load time.
    from .runner import build_mechanism, fit_sharded

    dataset = memoized_dataset(config, repeat)
    if queries is None:
        if workload_factory is None:
            queries = memoized_workload(config, repeat)
            truths = memoized_truths(config, repeat, dataset, queries)
        else:
            memo_key = json.dumps(
                [config_fingerprint(config), repeat,
                 _factory_identity(workload_factory)],
                sort_keys=True, default=str)

            def build_factory_inputs():
                built = workload_factory(config, dataset, repeat)
                return built, true_answers(dataset, built)

            queries, truths = _factory_inputs_memo.get_or_build(
                memo_key, build_factory_inputs)
    elif truths is None:
        truths = true_answers(dataset, queries)

    kwargs: dict[str, Any] = dict(config.mechanism_kwargs.get(method, {}))
    method_seed = config.seed + 31 * repeat + position
    mechanism = build_mechanism(method, config.epsilon, seed=method_seed,
                                **kwargs)
    if config.n_shards > 1 and mechanism.supports_sharding:
        mechanism = fit_sharded(method, method_seed, kwargs, dataset, config)
    else:
        mechanism.fit(dataset)
    mechanism.use_legacy_answering = config.query_engine == "legacy"
    estimates = mechanism.answer_workload(queries)
    result = score_workload(queries, estimates, truths)
    result.method = method
    result.repeat = repeat
    return result


def _evaluate_cell_task(payload: tuple) -> tuple[int, CellResult]:
    """Worker-side entry point; must stay module-level for pickling."""
    task_index, config, repeat, position, method, workload_factory = payload
    result = evaluate_cell(config, repeat, position, method,
                           workload_factory=workload_factory)
    return task_index, result


def _evaluate_cell_chunk(payload: tuple) -> list[tuple[int, CellResult]]:
    """Worker-side chunk entry point; must stay module-level for pickling.

    Evaluates a whole contiguous slice of the pending list in order, so
    one warm worker process (and its per-process memos) serves every
    cell of the chunk.
    """
    tasks, workload_factory = payload
    return [_evaluate_cell_task((*task, workload_factory)) for task in tasks]


def chunk_indices(n_tasks: int, n_chunks: int) -> list[range]:
    """Partition ``range(n_tasks)`` into ``n_chunks`` contiguous,
    near-equal ranges (earlier chunks take the remainder).

    Contiguity is the point: the pending list is repeat-major, so a
    contiguous chunk keeps one repetition's cells on one worker, where
    the dataset/workload memos are already warm.
    """
    if n_tasks < 0:
        raise ValueError("n_tasks must be >= 0")
    n_chunks = max(1, min(int(n_chunks), n_tasks))
    base, extra = divmod(n_tasks, n_chunks)
    chunks: list[range] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _is_picklable(value: Any) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


def _available_cpus() -> int:
    """Physical parallelism available to worker processes (test seam)."""
    return os.cpu_count() or 1


def resolve_n_jobs(configs: list[ExperimentConfig],
                   n_jobs: int | None) -> int:
    """The worker count for a grid: explicit override or the first config's."""
    if n_jobs is not None:
        return max(1, int(n_jobs))
    if configs:
        return max(1, int(configs[0].n_jobs))
    return 1


def execute_grid(configs: list[ExperimentConfig],
                 workload_factory: WorkloadFactory | None = None,
                 cache: ResultCache | None = None,
                 n_jobs: int | None = None) -> list[dict[tuple[int, str],
                                                         CellResult]]:
    """Evaluate every cell of every configuration, in parallel when asked.

    Parameters
    ----------
    configs:
        The configuration points (one for ``run_experiment``, one per
        sweep value for ``sweep_parameter``).  Each is validated first.
    workload_factory:
        Optional workload override.  Cells with a factory bypass the
        result cache (the factory's output is not part of the cache
        key) and, when parallel, the factory must be picklable and
        deterministic in ``(config, dataset, repeat)`` — closures fall
        back to in-process execution with a warning.
    cache:
        Optional on-disk cell cache; hits skip execution entirely.
    n_jobs:
        Worker-process count; defaults to the first config's ``n_jobs``
        field.  ``1`` runs every cell in-process in deterministic order.
        Requests beyond the machine's core count are capped — forked
        workers that cannot run concurrently only add start-up and
        context-switch overhead (the source of the old negative
        scaling on small machines); a request that caps to one worker
        takes the in-process path outright, skipping the fork.

    Returns
    -------
    list of dict
        Per configuration, a map from ``(repeat, method)`` to that
        cell's result.  Cells are bit-for-bit identical regardless of
        ``n_jobs`` or cache state.
    """
    for config in configs:
        config.validate()
    jobs = resolve_n_jobs(configs, n_jobs)

    # Repeat-major order: all config points of one repetition run
    # consecutively, so a sweep whose points share data parameters hits
    # the (FIFO-bounded) dataset memo instead of rebuilding each
    # repetition's dataset once per point.  Cell results do not depend
    # on execution order.
    max_repeats = max((config.n_repeats for config in configs), default=0)
    cells = [Cell(config_index, repeat, position, method)
             for repeat in range(max_repeats)
             for config_index, config in enumerate(configs)
             if repeat < config.n_repeats
             for position, method in enumerate(config.methods)]

    outcomes: dict[Cell, CellResult] = {}
    pending: list[Cell] = []
    use_cache = cache is not None and workload_factory is None
    for cell in cells:
        if use_cache:
            cached = cache.load(cell_key(configs[cell.config_index],
                                         cell.repeat, cell.method))
            if cached is not None:
                outcomes[cell] = cached
                continue
        pending.append(cell)

    if (jobs > 1 and pending and workload_factory is not None
            and not _is_picklable(workload_factory)):
        warnings.warn(
            "workload_factory is not picklable (closure or lambda?); "
            "falling back to in-process execution (n_jobs=1)",
            stacklevel=2)
        jobs = 1

    def record(cell: Cell, result: CellResult) -> None:
        """Keep a finished cell, persisting it immediately so an
        interrupted run resumes from every cell it completed."""
        outcomes[cell] = result
        if use_cache:
            cache.store(cell_key(configs[cell.config_index], cell.repeat,
                                 cell.method), result)

    effective_jobs = min(jobs, len(pending), _available_cpus())
    if effective_jobs <= 1:
        # Build factory workloads (and their exact answers) once per
        # (config, repetition), like the original sequential loop did.
        factory_inputs: dict[tuple[int, int], tuple[list, np.ndarray]] = {}
        for cell in pending:
            config = configs[cell.config_index]
            queries = truths = None
            if workload_factory is not None:
                inputs_key = (cell.config_index, cell.repeat)
                if inputs_key not in factory_inputs:
                    dataset = memoized_dataset(config, cell.repeat)
                    built = workload_factory(config, dataset, cell.repeat)
                    factory_inputs[inputs_key] = (
                        built, true_answers(dataset, built))
                queries, truths = factory_inputs[inputs_key]
            record(cell, evaluate_cell(config, cell.repeat, cell.position,
                                       cell.method,
                                       workload_factory=workload_factory,
                                       queries=queries, truths=truths))
    else:
        # One contiguous chunk per worker: each worker process receives
        # exactly one task covering its whole share of the pending list,
        # so dispatch/pickle overhead is paid per worker, not per cell.
        # Results land (and persist to the cache) as whole chunks
        # finish.
        chunks = chunk_indices(len(pending), effective_jobs)
        payloads = [([(task_index, configs[pending[task_index].config_index],
                       pending[task_index].repeat,
                       pending[task_index].position,
                       pending[task_index].method)
                      for task_index in chunk],
                     workload_factory)
                    for chunk in chunks]
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=len(payloads)) as pool:
            for chunk_results in pool.map(_evaluate_cell_chunk, payloads):
                for task_index, result in chunk_results:
                    record(pending[task_index], result)

    grouped: list[dict[tuple[int, str], CellResult]] = [{} for _ in configs]
    for cell, result in outcomes.items():
        grouped[cell.config_index][(cell.repeat, cell.method)] = result
    return grouped


def validate_equal_workload_lengths(config: ExperimentConfig,
                                    cells: dict[tuple[int, str], CellResult]
                                    ) -> None:
    """Reject variable-length workloads across repetitions with a clear error.

    Per-query errors are averaged over repetitions with ``np.stack``,
    which needs every repetition's workload to have the same length; a
    ``workload_factory`` that varies the query count per repetition used
    to surface as an opaque stack-shape crash.
    """
    lengths: dict[int, int] = {}
    kinds: dict[int, list[str] | None] = {}
    for (repeat, _method), result in cells.items():
        lengths.setdefault(repeat, int(result.per_query_errors.shape[0]))
        kinds.setdefault(repeat, result.query_kinds)
    distinct = sorted(set(lengths.values()))
    if len(distinct) > 1:

        def describe(repeat: int) -> str:
            """'repeat 0: 12 queries (8 range, 4 marginal)'."""
            summary = f"repeat {repeat}: {lengths[repeat]} queries"
            if kinds.get(repeat):
                counts: dict[str, int] = {}
                for kind in kinds[repeat]:
                    counts[kind] = counts.get(kind, 0) + 1
                breakdown = ", ".join(f"{count} {kind}"
                                      for kind, count in sorted(counts.items()))
                summary += f" ({breakdown})"
            return summary

        # Majority length = the expected one; the anomaly is the first
        # repetition that deviates from it (ties go to the length seen
        # in the earliest repetition).
        counts: dict[int, int] = {}
        for repeat in sorted(lengths):
            counts[lengths[repeat]] = counts.get(lengths[repeat], 0) + 1
        majority = max(counts, key=counts.get)
        baseline = min(repeat for repeat in lengths
                       if lengths[repeat] == majority)
        offender = min(repeat for repeat in lengths
                       if lengths[repeat] != majority)
        raise ValueError(
            "workload_factory returned workloads of different lengths across "
            f"repetitions ({', '.join(describe(r) for r in sorted(lengths))}); "
            f"repeat {offender} first disagrees with repeat {baseline}. "
            "Per-query errors can only be averaged over repetitions when "
            "every repetition answers the same number of queries")

    # Equal lengths are not enough for mixed workloads: per-query errors
    # are averaged position-wise, so the query *kind* at each position
    # must agree across repetitions too.  Pure-range cells record no
    # kind list — that means "range at every position", which must
    # still be compared against typed repetitions of the same length.
    recorded = {repeat: (list(kind_list) if kind_list is not None
                         else ["range"] * lengths[repeat])
                for repeat, kind_list in kinds.items()}
    if len({tuple(kind_list) for kind_list in recorded.values()}) > 1:
        baseline = min(recorded)
        offender = next(repeat for repeat in sorted(recorded)
                        if recorded[repeat] != recorded[baseline])
        position = next(index for index, (a, b)
                        in enumerate(zip(recorded[offender],
                                         recorded[baseline]))
                        if a != b)
        raise ValueError(
            "workload_factory returned kind-misaligned workloads across "
            f"repetitions: query {position} is a "
            f"{recorded[offender][position]} query in repeat {offender} but "
            f"a {recorded[baseline][position]} query in repeat {baseline}; "
            "per-query errors can only be averaged position-wise when every "
            "repetition asks the same kind at each position")


def assemble_method_series(config: ExperimentConfig,
                           cells: dict[tuple[int, str], CellResult],
                           method: str) -> tuple[list[float], np.ndarray]:
    """Per-repetition MAEs (in repeat order) and the averaged error vector."""
    maes = [cells[(repeat, method)].mae for repeat in range(config.n_repeats)]
    errors = np.stack([cells[(repeat, method)].per_query_errors
                       for repeat in range(config.n_repeats)])
    return maes, np.mean(errors, axis=0)
