"""Throughput of mixed typed workloads through the planner stack.

The typed query IR compiles marginal/point/count/top-k queries onto the
prefix-sum batch engine's range primitives.  This benchmark measures
what that compiler layer costs and delivers, per mechanism (TDG, HDG):

* **mixed (typed)** — queries/sec of a workload cycling all five kinds
  through ``answer_workload`` (compile → fused batch answer →
  vectorised reassembly), exactly as the serving path runs it.  One
  warm-up call outside the timer populates the compiled-plan cache, so
  the timed rounds measure steady-state serving; the one-time
  plan-compilation cost is reported separately as ``compile_seconds``;
* **pre-lowered ranges** — the same primitive ranges answered as a flat
  range workload with the plan built once outside the timer, so the
  reported overhead covers exactly the typed surface's extra work
  (plan-cache lookup plus typed reassembly);
* **primitives/query** — how many range primitives one typed query
  expands to on average (marginals dominate: ``c²`` cells each).

Run directly::

    PYTHONPATH=src python benchmarks/bench_mixed_workload.py
    PYTHONPATH=src python benchmarks/bench_mixed_workload.py --smoke

``--smoke`` shrinks the load so CI exercises the whole path in seconds.
``--max-overhead-fraction X`` turns the run into a regression gate: it
exits non-zero if any mechanism's plan-and-reassemble overhead exceeds
``X`` (CI runs ``--smoke --max-overhead-fraction 0.5``).  Every run
appends a ``mixed_workload`` record to the ``BENCH_fit.json``
trajectory artifact at the repository root.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _scale import append_trajectory, report  # noqa: E402

from repro import HDG, TDG, make_dataset  # noqa: E402
from repro.queries import WorkloadGenerator, query_kind  # noqa: E402


def run(n_users: int, n_attributes: int, domain_size: int, n_queries: int,
        rounds: int, epsilon: float, seed: int,
        smoke: bool) -> tuple[str, dict]:
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    rng = np.random.default_rng(seed)
    dataset = make_dataset("normal", n_users, n_attributes, domain_size,
                           rng=rng)
    generator = WorkloadGenerator(n_attributes, domain_size,
                                  rng=np.random.default_rng(seed + 1))
    mixed = generator.mixed_workload(n_queries, 2, 0.5)
    kinds = sorted({query_kind(query) for query in mixed})

    lines = [f"mixed-workload throughput: eps={epsilon} n={n_users} "
             f"d={n_attributes} c={domain_size} |Q|={n_queries} "
             f"kinds={','.join(kinds)} ({'smoke' if smoke else 'full'})"]
    entry: dict = {
        "mode": "smoke" if smoke else "full",
        "n_queries": n_queries,
        "rounds": rounds,
        "domain_size": domain_size,
    }
    worst_overhead = 0.0
    for factory in (TDG, HDG):
        mechanism = factory(epsilon, seed=seed).fit(dataset)
        plan = mechanism.query_planner().plan(mixed)
        primitives = plan.n_primitives

        # Warm-up: compile the plan (and populate the LRU) outside the
        # timer, so the rounds below measure the steady-state serving
        # rate and the one-time compilation cost is reported on its own.
        start = time.perf_counter()
        results = mechanism.answer_workload(mixed)
        compile_seconds = time.perf_counter() - start
        assert mechanism.plan_cache_stats()["size"] == 1

        start = time.perf_counter()
        for _ in range(rounds):
            results = mechanism.answer_workload(mixed)
        typed_seconds = time.perf_counter() - start
        assert len(results) == n_queries

        flat_ranges = plan.ranges
        start = time.perf_counter()
        for _ in range(rounds):
            flat = mechanism.answer_workload(flat_ranges)
        flat_seconds = time.perf_counter() - start
        assert np.isfinite(flat).all()

        typed_rate = rounds * n_queries / typed_seconds
        primitive_rate = rounds * primitives / flat_seconds
        overhead = (typed_seconds - flat_seconds) / max(flat_seconds, 1e-12)
        worst_overhead = max(worst_overhead, overhead)
        lines += [
            f"  {mechanism.name:>4}: {primitives} primitives for "
            f"{n_queries} typed queries "
            f"({primitives / n_queries:.1f} primitives/query, "
            f"compile {compile_seconds * 1e3:.1f}ms once)",
            f"        typed workload    : {typed_seconds:6.2f}s "
            f"-> {typed_rate:10.1f} queries/sec",
            f"        pre-lowered ranges: {flat_seconds:6.2f}s "
            f"-> {primitive_rate:10.1f} primitives/sec "
            f"(plan+reassemble overhead {overhead * 100:+.1f}%)",
        ]
        entry[mechanism.name] = {
            "primitives": primitives,
            "compile_seconds": round(compile_seconds, 4),
            "typed_queries_per_sec": round(typed_rate, 1),
            "primitive_ranges_per_sec": round(primitive_rate, 1),
            "plan_and_reassemble_overhead_fraction": round(overhead, 4),
        }
    entry["worst_overhead_fraction"] = round(worst_overhead, 4)
    return "\n".join(lines), entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small population and workload")
    parser.add_argument("--max-overhead-fraction", type=float, default=None,
                        help="fail (exit 1) if any mechanism's plan-and-"
                             "reassemble overhead fraction exceeds this")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        settings = dict(n_users=4_000, n_attributes=3, domain_size=16,
                        n_queries=50, rounds=2)
    else:
        settings = dict(n_users=100_000, n_attributes=4, domain_size=32,
                        n_queries=400, rounds=5)
    text, entry = run(epsilon=args.epsilon, seed=args.seed, smoke=args.smoke,
                      **settings)
    report("mixed_workload", text)
    append_trajectory("mixed_workload", entry)
    if (args.max_overhead_fraction is not None
            and entry["worst_overhead_fraction"] > args.max_overhead_fraction):
        print(f"FAIL: plan-and-reassemble overhead "
              f"{entry['worst_overhead_fraction']:+.4f} exceeds the "
              f"--max-overhead-fraction gate {args.max_overhead_fraction}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
