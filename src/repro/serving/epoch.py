"""Epoch publication: the serving tier's lock-free read path.

PR 6's worker-pool front end gave the service concurrency it could not
use: every query funnelled through one service lock, so readers
serialized and a re-finalize stalled them all.  This module replaces
that with RCU-style *epoch publication*:

* a re-finalize (or restore) builds an immutable
  :class:`EstimatorEpoch` — the finalized estimator, a monotonically
  increasing epoch id, a reference to the service's answer cache and a
  per-epoch scratch map of single-query compiled plans — entirely off
  the read path;
* the service *publishes* it with one reference assignment
  (``self._epoch = epoch``), which the CPython memory model makes
  atomic: a reader loads the reference once and then answers against
  a fully-constructed, never-mutated view.  Readers take no lock and
  writers never wait for readers;
* answers are cached in an LRU keyed by ``(epoch_id, *queries)``.
  Invalidation is free by construction: publishing a new epoch changes
  every key, and stale entries simply age out of the LRU.

Consistency contract (pinned by ``tests/test_epoch_serving.py``): a
query observes exactly one fully-published epoch — never a mix of two
— and its answers are bitwise identical to quiescing the service and
answering through the estimator directly, for all nine mechanisms.

Purity: mechanisms whose answering is side-effect free
(:attr:`~repro.core.RangeQueryMechanism.answering_is_pure`) answer
concurrently with no lock at all.  HIO and LHIO draw lazy noise and
memoize it during answering, so their epochs carry one per-epoch
answering lock — readers of *those* mechanisms serialize against each
other, but still never against ingest or re-finalize.
"""

from __future__ import annotations

import threading

import numpy as np

from ..queries import Query, QueryResult, ScalarResult
from ..queries.range_query import RangeQuery

__all__ = ["AnswerCache", "EstimatorEpoch"]

#: Default number of answered workloads kept per service.
DEFAULT_ANSWER_CACHE_ENTRIES = 256

#: Per-epoch bound on memoized single-query compiled plans.  The map
#: is keyed by the query object itself (queries are hashable frozen
#: dataclasses), skipping the SHA-256 workload fingerprint the shared
#: plan LRU pays per lookup.
SINGLE_PLAN_LIMIT = 512


def _results_document(results: list[QueryResult]) -> dict:
    """The wire document for one answered workload (see ``query_wire``)."""
    document = {"count": len(results),
                "results": [result.to_wire() for result in results]}
    if all(isinstance(result, ScalarResult) for result in results):
        document["answers"] = [float(result.value) for result in results]
    return document


class _CachedAnswer:
    """One workload's memoized representations, filled lazily.

    The same workload may be asked for as a flat range vector
    (``query``), typed results (``query_typed``) or a wire document
    (``query_wire``); each representation is computed at most once per
    epoch and the others are derived or computed on first demand.
    Concurrent fills of the same slot are benign: both threads compute
    the identical value (answering a fixed epoch is deterministic) and
    the last assignment wins.
    """

    __slots__ = ("array", "typed", "wire")

    def __init__(self) -> None:
        self.array: np.ndarray | None = None
        self.typed: list[QueryResult] | None = None
        self.wire: dict | None = None


class AnswerCache:
    """Thread-safe bounded LRU of answered workloads with counters.

    Keys are ``(epoch_id, *queries)`` tuples, so entries from a
    superseded epoch can never be served again — they linger only
    until the LRU ages them out.  ``capacity=0`` disables caching
    (every lookup is a counted miss, ``put`` is a no-op), which the
    benchmarks use to measure the uncached fast path honestly.
    """

    def __init__(self, capacity: int = DEFAULT_ANSWER_CACHE_ENTRIES):
        if capacity < 0:
            raise ValueError("capacity must be >= 0 (0 disables caching)")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: dict[tuple, _CachedAnswer] = {}
        self._order: list[tuple] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> _CachedAnswer | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._order.remove(key)
            self._order.append(key)
            return entry

    def put(self, key: tuple, entry: _CachedAnswer) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._order.remove(key)
            self._entries[key] = entry
            self._order.append(key)
            while len(self._order) > self.capacity:
                evicted = self._order.pop(0)
                del self._entries[evicted]
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()
            self._order.clear()

    def stats(self) -> dict:
        """Counters for health documents and the concurrency tests."""
        with self._lock:
            return {"size": len(self._entries), "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}


class EstimatorEpoch:
    """One immutable published read view of the service.

    Built entirely before publication and never mutated afterwards
    (the scratch plan map and the estimator's lazy-noise caches are
    internal memoization, invisible in answers), so any thread that
    loads the epoch reference answers against one consistent finalized
    estimator.

    Answers are bitwise identical to calling the estimator directly:
    the fast paths below run the exact same kernels in the exact same
    order, only skipping per-call interpretation (fingerprint hashing,
    plan re-compilation, redundant list traversals).
    """

    __slots__ = ("epoch_id", "estimator", "answer_cache", "_answer_lock",
                 "_single_plans")

    def __init__(self, epoch_id: int, estimator,
                 answer_cache: AnswerCache | None = None):
        self.epoch_id = int(epoch_id)
        self.estimator = estimator
        self.answer_cache = answer_cache
        #: Impure mechanisms (HIO/LHIO) mutate lazy-noise state while
        #: answering; one per-epoch lock serializes their readers.
        self._answer_lock = (None if estimator.answering_is_pure
                             else threading.Lock())
        self._single_plans: dict[Query, object] = {}

    @property
    def answering_is_pure(self) -> bool:
        """Whether this epoch answers with no lock at all."""
        return self._answer_lock is None

    # ------------------------------------------------------------------
    # Cache slot resolution
    # ------------------------------------------------------------------
    def _slot(self, queries: tuple) -> _CachedAnswer | None:
        """The workload's cached-answer slot; None when caching is off.

        A fresh (empty) slot is inserted on miss so all three
        representations share one entry.  Unhashable workloads (not
        produced by the public wire or IR surface) silently bypass the
        cache instead of failing the query.
        """
        cache = self.answer_cache
        if cache is None or cache.capacity == 0:
            return None
        try:
            entry = cache.get((self.epoch_id, *queries))
        except TypeError:
            return None
        if entry is None:
            entry = _CachedAnswer()
            cache.put((self.epoch_id, *queries), entry)
        return entry

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer_workload(self, queries) -> np.ndarray | list[QueryResult]:
        """``QueryService.query`` semantics against this epoch.

        Pure range workloads return the flat float vector (a copy, so
        callers may mutate it); mixed workloads return typed results.
        """
        queries = tuple(queries)
        if not queries:
            return np.empty(0)
        if any(not isinstance(query, RangeQuery) for query in queries):
            return self.answer_typed(queries)
        slot = self._slot(queries)
        if slot is not None and slot.array is not None:
            return slot.array.copy()
        array = self._compute_ranges(queries)
        if slot is not None:
            slot.array = array
            return array.copy()
        return array

    def answer_typed(self, queries) -> list[QueryResult]:
        """``QueryService.query_typed`` semantics against this epoch."""
        queries = tuple(queries)
        slot = self._slot(queries)
        if slot is not None and slot.typed is not None:
            return list(slot.typed)
        results = self._compute_typed(queries)
        if slot is not None:
            slot.typed = results
            return list(results)
        return results

    def wire_document(self, queries) -> dict:
        """The ``POST /query`` response document for one workload.

        Cache hits return the memoized document itself — it goes
        straight to ``json.dumps``, so treat it as immutable.
        """
        queries = tuple(queries)
        slot = self._slot(queries)
        if slot is not None and slot.wire is not None:
            return slot.wire
        if slot is not None and slot.typed is not None:
            results = slot.typed
        else:
            results = self._compute_typed(queries)
            if slot is not None:
                slot.typed = results
        document = _results_document(results)
        if slot is not None:
            slot.wire = document
        return document

    # ------------------------------------------------------------------
    # Uncached computation (the fast paths)
    # ------------------------------------------------------------------
    def _compute_ranges(self, queries: tuple) -> np.ndarray:
        """Validated range primitives through the estimator's batch path.

        Identical calls to ``answer_workload`` on the estimator —
        validation then ``_answer_ranges`` — without re-running the
        kind dispatch the caller already performed.
        """
        estimator = self.estimator
        for query in queries:
            estimator._validate_query(query)
        if self._answer_lock is None:
            return estimator._answer_ranges(list(queries))
        with self._answer_lock:
            return estimator._answer_ranges(list(queries))

    def _compute_typed(self, queries: tuple) -> list[QueryResult]:
        """Compile (memoized), batch-answer, reassemble — one workload.

        Single-query workloads resolve their compiled plan through the
        per-epoch scratch map keyed by the query object itself,
        skipping the shared LRU's SHA-256 fingerprint; the plan object
        is the very one the shared cache holds, so answers cannot
        diverge.
        """
        estimator = self.estimator
        if len(queries) == 1:
            compiled = self._single_plans.get(queries[0])
            if compiled is None:
                compiled = estimator._plan_for([queries[0]])
                if len(self._single_plans) < SINGLE_PLAN_LIMIT:
                    self._single_plans[queries[0]] = compiled
        else:
            compiled = estimator._plan_for(list(queries))
        if self._answer_lock is None:
            answers = (estimator._answer_compiled(compiled)
                       if compiled.n_primitives else np.empty(0))
        else:
            with self._answer_lock:
                answers = (estimator._answer_compiled(compiled)
                           if compiled.n_primitives else np.empty(0))
        return compiled.assemble(answers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EstimatorEpoch(id={self.epoch_id}, "
                f"{type(self.estimator).__name__}, "
                f"{'lock-free' if self.answering_is_pure else 'locked'})")
