"""repro — reproduction of "Answering Multi-Dimensional Range Queries under
Local Differential Privacy" (Yang et al., VLDB 2020).

The package implements the paper's contributions — the TDG and HDG grid
mechanisms with the granularity guideline — together with every substrate
and baseline its evaluation depends on: LDP frequency oracles (GRR, OLH,
Square Wave), the Uni/MSW/CALM/HIO/LHIO baselines, dataset generators,
query workloads, post-processing, metrics and a per-figure experiment
harness.  Collection is shard-mergeable: mechanisms support
``partial_fit`` / ``merge`` / ``finalize`` and the :mod:`repro.pipeline`
package streams, parallelises and serializes the per-shard state.
Fitted estimators snapshot and restore bitwise
(``save_state``/``load_state``), and :mod:`repro.serving` serves them as
a long-lived HTTP query service with incremental ingest
(``repro serve``).  Beyond range queries, the typed query IR
(:mod:`repro.queries`) adds marginal, point, predicate-count and top-k
queries, all compiled by a workload planner onto the same batched
answering primitives.

Quickstart
----------
>>> import numpy as np
>>> from repro import HDG, WorkloadGenerator, answer_workload, make_dataset
>>> data = make_dataset("normal", 50_000, 4, 32, rng=np.random.default_rng(0))
>>> queries = WorkloadGenerator(4, 32, rng=np.random.default_rng(1)).random_workload(20, 2, 0.5)
>>> mechanism = HDG(epsilon=1.0, seed=0).fit(data)
>>> estimates = mechanism.answer_workload(queries)
>>> truths = answer_workload(data, queries)
"""

from ._version import __version__, package_version
from .baselines import CALM, HIO, LHIO, MSW, Uniform
from .core import (HDG, IHDG, ITDG, TDG, Grid1D, Grid2D, RangeQueryMechanism,
                   build_response_matrix, choose_granularities_hdg,
                   choose_granularity_tdg, estimate_lambda_query)
from .datasets import Dataset, available_datasets, make_dataset
from .experiments import ExperimentConfig, build_mechanism, run_experiment, sweep_parameter
from .frequency_oracles import (GeneralizedRandomizedResponse, OptimizedLocalHash,
                                SquareWave, SupportAccumulator)
from .metrics import absolute_errors, mean_absolute_error
from .pipeline import ShardAggregator, parallel_fit, shard_dataset
from .queries import (MarginalQuery, PointQuery, Predicate,
                      PredicateCountQuery, QueryPlanner, RangeQuery, TopKQuery,
                      WorkloadGenerator, answer_query, answer_workload,
                      evaluate_query, evaluate_workload)
from .serving import QueryService, SnapshotStore, restore_mechanism

__all__ = [
    "CALM",
    "Dataset",
    "ExperimentConfig",
    "GeneralizedRandomizedResponse",
    "Grid1D",
    "Grid2D",
    "HDG",
    "HIO",
    "IHDG",
    "ITDG",
    "LHIO",
    "MSW",
    "MarginalQuery",
    "OptimizedLocalHash",
    "PointQuery",
    "Predicate",
    "PredicateCountQuery",
    "QueryPlanner",
    "QueryService",
    "RangeQuery",
    "TopKQuery",
    "RangeQueryMechanism",
    "ShardAggregator",
    "SnapshotStore",
    "SquareWave",
    "SupportAccumulator",
    "TDG",
    "Uniform",
    "WorkloadGenerator",
    "__version__",
    "absolute_errors",
    "answer_query",
    "answer_workload",
    "available_datasets",
    "build_mechanism",
    "build_response_matrix",
    "choose_granularities_hdg",
    "choose_granularity_tdg",
    "estimate_lambda_query",
    "evaluate_query",
    "evaluate_workload",
    "make_dataset",
    "mean_absolute_error",
    "package_version",
    "parallel_fit",
    "restore_mechanism",
    "run_experiment",
    "shard_dataset",
    "sweep_parameter",
]
