"""Quickstart: answer multi-dimensional range queries under LDP with HDG.

This example walks through the full pipeline on a synthetic correlated
dataset:

1. generate a dataset of user records,
2. fit the HDG mechanism (the paper's main contribution) — this simulates
   every user sending a single ε-LDP report,
3. answer a workload of random range queries from the private summaries,
4. compare against the exact answers and a few baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (HDG, MSW, TDG, Uniform, WorkloadGenerator, answer_workload,
                   make_dataset, mean_absolute_error)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: 100k users, 4 ordinal attributes with domain [0, 64).
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    dataset = make_dataset("normal", n_users=100_000, n_attributes=4,
                           domain_size=64, rng=rng)
    print(f"dataset: {dataset}")

    # ------------------------------------------------------------------
    # 2. Collection: every user reports once under epsilon-LDP.
    # ------------------------------------------------------------------
    epsilon = 1.0
    mechanism = HDG(epsilon=epsilon, seed=0).fit(dataset)
    print(f"HDG fitted with guideline granularities "
          f"g1={mechanism.chosen_g1}, g2={mechanism.chosen_g2}")

    # ------------------------------------------------------------------
    # 3. Querying: any number of range queries, no further privacy cost.
    # ------------------------------------------------------------------
    generator = WorkloadGenerator(dataset.n_attributes, dataset.domain_size,
                                  rng=np.random.default_rng(1))
    queries = generator.random_workload(n_queries=100, dimension=2, volume=0.5)
    estimates = mechanism.answer_workload(queries)
    truths = answer_workload(dataset, queries)

    print("\nfirst five queries:")
    for query, estimate, truth in list(zip(queries, estimates, truths))[:5]:
        print(f"  {query}: estimate={estimate:.4f}  true={truth:.4f}")

    # ------------------------------------------------------------------
    # 4. Comparison against baselines on the same workload.
    # ------------------------------------------------------------------
    print(f"\nMAE over {len(queries)} random 2-D queries (epsilon={epsilon}):")
    print(f"  HDG : {mean_absolute_error(estimates, truths):.5f}")
    for baseline in (TDG(epsilon, seed=0), MSW(epsilon, seed=0), Uniform()):
        baseline.fit(dataset)
        mae = mean_absolute_error(baseline.answer_workload(queries), truths)
        print(f"  {baseline.name:4s}: {mae:.5f}")


if __name__ == "__main__":
    main()
