"""Distributed-determinism harness: the ingest tier, pinned bitwise.

For every one of the paper's nine mechanisms, N-worker shared-memory
ingest followed by a merge must produce **bitwise identical** finalized
estimates and query answers to the equivalent single-process execution:

* the five shardable mechanisms (TDG, HDG, ITDG, IHDG, CALM) run in
  **stream** mode — each worker ``partial_fit``\\ s into its shared
  accumulator block under ``shard_seed(seed, i)``; the reference is
  the same shard plan executed in one process and folded through
  ``merge``/``finalize``;
* the four non-shardable mechanisms (HIO, LHIO, MSW, Uni) run in
  **refit** mode — workers append routed rows to shared row logs, the
  merge reassembles them in global key order (== submission order) and
  refits a fresh same-seeded instance, so the reference is simply the
  single-process refit service over the same batches.

Each case is additionally pinned across a snapshot/restore round-trip
(through the JSON wire form of ``QueryService.state_dict``) taken
mid-stream: the restored service ingests the remaining batches and
must land on the same answers as an uninterrupted distributed run —
and therefore the same answers as the single-process reference.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.ingest import ConsistentHashRouter, IngestTier
from repro.ingest.worker import MECHANISM_CLASSES
from repro.pipeline.parallel import shard_seed
from repro.serving import QueryService
from repro.storage import BACKENDS

DOMAIN = 8
D = 3
SEED = 13
N_WORKERS = 2
EPSILON = 1.0

#: One wire workload: a 2-dim and two 1-dim range queries — scalar
#: answers compare with ``==`` (bitwise for floats).
WORKLOAD = [
    [[0, 0, 3], [1, 2, 6]],
    [[0, 1, 5]],
    [[2, 0, 4]],
]

STREAM_MECHANISMS = ("TDG", "HDG", "ITDG", "IHDG", "CALM")
REFIT_MECHANISMS = ("HIO", "LHIO", "MSW", "Uni")


def _batches(n_batches: int = 3, n: int = 150) -> list[np.ndarray]:
    rng = np.random.default_rng(99)
    return [rng.integers(0, DOMAIN, size=(n, D)) for _ in range(n_batches)]


def _service(mechanism: str, mode: str, workers: int | None) -> QueryService:
    return QueryService(mechanism, EPSILON, seed=SEED, domain_size=DOMAIN,
                        ingest_mode=mode, ingest_workers=workers)


def _answers(service: QueryService) -> list[float]:
    return service.query_wire([{"predicates": q} for q in WORKLOAD])["answers"]


def _reference_shard_plan(mechanism: str, batches: list[np.ndarray],
                          planning_users: int):
    """Single-process execution of the tier's exact shard plan."""
    router = ConsistentHashRouter(N_WORKERS, seed=SEED)
    factory = MECHANISM_CLASSES[mechanism]
    workers = []
    for index in range(N_WORKERS):
        worker = factory(EPSILON, seed=shard_seed(SEED, index))
        worker.prepare_aggregation(D, DOMAIN, total_users=planning_users)
        workers.append(worker)
    next_key = 0
    for rows in batches:
        keys = np.arange(next_key, next_key + rows.shape[0])
        for index, positions in sorted(router.split(keys).items()):
            workers[index].partial_fit(Dataset(rows[positions], DOMAIN))
        next_key += rows.shape[0]
    merged = factory(EPSILON)
    merged.load_shard_state(workers[0].shard_state())
    for worker in workers[1:]:
        shard = factory(EPSILON)
        shard.load_shard_state(worker.shard_state())
        merged.merge(shard)
    merged.finalize()
    return merged


@pytest.mark.parametrize("mechanism", STREAM_MECHANISMS)
def test_stream_tier_matches_single_process_shard_plan(mechanism):
    batches = _batches()
    planning = batches[0].shape[0]  # what the service resolves lazily
    tier = IngestTier(mechanism, EPSILON, n_workers=N_WORKERS,
                      n_attributes=D, domain_size=DOMAIN, seed=SEED,
                      ingest_mode="stream", planning_users=planning)
    try:
        for rows in batches:
            tier.submit(rows)
        estimator = tier.coordinator.merge()
    finally:
        tier.close()
    reference = _reference_shard_plan(mechanism, batches, planning)
    # Finalized internal estimates, bitwise.  (rng_state is excluded:
    # the two finalizing clones are unseeded, and no Phase-2 or
    # answering path of a stream mechanism draws from it.)
    ours, expected = estimator.save_state(), reference.save_state()
    ours.pop("rng_state"), expected.pop("rng_state")
    assert ours == expected
    assert _answers(QueryService(estimator)) \
        == _answers(QueryService(reference))


@pytest.mark.parametrize("mechanism", REFIT_MECHANISMS)
def test_refit_tier_matches_single_process_refit(mechanism):
    batches = _batches()
    distributed = _service(mechanism, "refit", N_WORKERS)
    single = _service(mechanism, "refit", None)
    try:
        for rows in batches:
            distributed.ingest(rows)
            single.ingest(rows)
        distributed.refinalize()
        single.refinalize()
        assert _answers(distributed) == _answers(single)
    finally:
        distributed.close()


@pytest.mark.parametrize("mechanism",
                         STREAM_MECHANISMS + REFIT_MECHANISMS)
def test_snapshot_restore_round_trip_is_bitwise(mechanism):
    """Snapshot mid-stream, restore from the JSON wire form, continue:
    same answers as an uninterrupted distributed run."""
    mode = "stream" if mechanism in STREAM_MECHANISMS else "refit"
    batches = _batches()

    uninterrupted = _service(mechanism, mode, N_WORKERS)
    interrupted = _service(mechanism, mode, N_WORKERS)
    try:
        for rows in batches[:2]:
            uninterrupted.ingest(rows)
            interrupted.ingest(rows)
        state = json.loads(json.dumps(interrupted.state_dict()))
        interrupted.close()
        restored = QueryService.from_state_dict(state)
        try:
            for rows in batches[2:]:
                uninterrupted.ingest(rows)
                restored.ingest(rows)
            uninterrupted.refinalize()
            restored.refinalize()
            assert restored.reports_ingested \
                == uninterrupted.reports_ingested
            assert _answers(restored) == _answers(uninterrupted)
        finally:
            restored.close()
    finally:
        uninterrupted.close()


def test_stream_service_matches_standalone_tier():
    """The service's lazy tier (planning users from the first batch)
    answers exactly like the tier driven by hand."""
    batches = _batches()
    service = _service("TDG", "stream", N_WORKERS)
    try:
        for rows in batches:
            service.ingest(rows)
        service.refinalize()
        answers = _answers(service)
        status = service.status()
        assert status["ingest_workers"] == N_WORKERS
        tier_metrics = status["ingest_tier"]
        assert tier_metrics["reports_total"] == sum(len(b) for b in batches)
        assert tier_metrics["merge"]["merge_lag_reports"] == 0
        assert all(worker["batches_pending"] == 0
                   for worker in tier_metrics["workers"])
    finally:
        service.close()
    reference = _reference_shard_plan("TDG", batches, batches[0].shape[0])
    assert answers == _answers(QueryService(reference))


def test_merge_lag_tracks_unmerged_reports():
    batches = _batches()
    service = _service("HDG", "stream", N_WORKERS)
    try:
        service.ingest(batches[0])
        service.refinalize()
        service.ingest(batches[1])
        merge = service.status()["ingest_tier"]["merge"]
        assert merge["merges"] == 1
        assert merge["merge_lag_reports"] == batches[1].shape[0]
    finally:
        service.close()


@pytest.mark.scaling
@pytest.mark.slow
def test_worker_throughput_scales():
    """More collector workers → more reports/sec (multi-core hosts).

    On hosts with fewer than 4 CPUs the test still exercises the
    multi-worker path end to end but skips the throughput assertion —
    worker processes would just time-share one core.
    """
    import os
    import time

    rng = np.random.default_rng(4)
    rows = rng.integers(0, 16, size=(200_000, 4))

    def run(workers: int) -> float:
        tier = IngestTier("TDG", EPSILON, n_workers=workers,
                          n_attributes=4, domain_size=16, seed=SEED,
                          planning_users=rows.shape[0])
        try:
            started = time.perf_counter()
            for start in range(0, rows.shape[0], 20_000):
                tier.submit(rows[start:start + 20_000])
            tier.flush()
            elapsed = time.perf_counter() - started
            assert tier.reports_total == rows.shape[0]
        finally:
            tier.close()
        return rows.shape[0] / elapsed

    single = run(1)
    quad = run(4)
    if (os.cpu_count() or 1) >= 4:
        assert quad > 1.5 * single, (single, quad)


@pytest.mark.chaos
def test_worker_killed_while_holding_lock_does_not_deadlock():
    """SIGKILL can land inside a worker's locked publish window, which
    abandons the block lock forever.  The parent must keep serving
    metrics and fail flush fast instead of deadlocking on the lock."""
    import os
    import signal
    import time

    from repro.ingest import IngestWorkerError

    rng = np.random.default_rng(5)
    rows = rng.integers(0, DOMAIN, size=(60, D))
    tier = IngestTier("TDG", EPSILON, n_workers=N_WORKERS, n_attributes=D,
                      domain_size=DOMAIN, seed=SEED, planning_users=60)
    try:
        tier.submit(rows)
        tier.flush()
        # Hold worker 0's lock (standing in for the killed worker's
        # abandoned acquisition), then kill the process for real.
        assert tier._locks[0].acquire(timeout=5)
        try:
            os.kill(tier.worker_pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while (tier._processes[0].is_alive()
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            metrics = tier.metrics()  # lock-free fallback, no deadlock
            assert metrics["workers"][0]["alive"] is False
            assert metrics["workers"][0]["reports_done"] > 0
            with pytest.raises(IngestWorkerError):
                tier.flush(timeout=5)
        finally:
            tier._locks[0].release()
    finally:
        tier.close()


@pytest.mark.parametrize("kind", sorted(BACKENDS))
def test_distributed_tenant_recovers_bitwise(kind, tmp_path):
    """Snapshot + WAL replay of a distributed tenant, both backends."""
    from repro.serving import TenantManager
    from repro.storage import open_backend

    config = {"mechanism": "TDG", "epsilon": EPSILON, "seed": SEED,
              "domain_size": DOMAIN, "ingest_workers": N_WORKERS}
    batches = _batches()
    location = (tmp_path / "store") if kind == "json" \
        else (tmp_path / "store.db")

    backend = open_backend(kind, location)
    manager = TenantManager(backend, default_config=config)
    manager.ingest("default", batches[0].tolist())
    manager.save_snapshot("default")
    manager.ingest("default", batches[1].tolist())
    manager.refinalize("default")
    expected = _answers(manager.service("default"))
    manager.close()
    backend.close()

    backend = open_backend(kind, location)
    recovered = TenantManager(backend)
    assert not recovered.quarantined_tenants()
    recovered.refinalize("default")
    assert _answers(recovered.service("default")) == expected
    recovered.close()
    backend.close()
