"""CALM baseline: 2-way marginal release adapted to range queries (Section 3.2).

CALM (Zhang et al., CCS 2018) is the state of the art for marginal release
under LDP.  Configured as in the paper's experiments, it collects the full
``c x c`` 2-way marginal of every attribute pair (one disjoint user group
per pair, OLH reports), enforces non-negativity and cross-marginal
consistency, and answers a range query by summing the noisy marginal cells
that fall inside the query (2-D queries) or by reconstructing the needed
higher-dimensional answer from the pairwise answers (λ > 2, using the same
combination step as the grid approaches).

Structurally CALM is therefore TDG *without binning* (granularity fixed to
the full domain size), which is precisely why it fails the paper's third
challenge: answering a range query must sum ``(ω c)^2`` noisy cells, so the
noise error grows with the domain size.
"""

from __future__ import annotations

from ..core.tdg import TDG
from ..datasets import Dataset


class CALM(TDG):
    """CALM configured with full-resolution 2-way marginals.

    Parameters are the same as :class:`repro.core.TDG` minus the
    granularity, which is pinned to the dataset's domain size at fit time.
    """

    name = "CALM"

    def __init__(self, epsilon: float, postprocess: bool = True,
                 consistency_rounds: int = 3,
                 estimation_method: str = "weighted_update",
                 estimation_iterations: int = 100,
                 oracle_mode: str = "fast", seed: int | None = None):
        super().__init__(epsilon, granularity=None, postprocess=postprocess,
                         consistency_rounds=consistency_rounds,
                         estimation_method=estimation_method,
                         estimation_iterations=estimation_iterations,
                         oracle_mode=oracle_mode, seed=seed)

    def _fit(self, dataset: Dataset) -> None:
        # No binning: every marginal cell is a single 2-D value.
        self.granularity = dataset.domain_size
        super()._fit(dataset)

    def _snapshot_config(self) -> dict:
        config = super()._snapshot_config()
        # Pinned at fit time / fixed by the paper's configuration; not
        # accepted by CALM's constructor.
        del config["granularity"], config["alpha2"]
        return config
