"""Tests for the storage backend tier (repro.storage).

One parametrized contract suite runs against both implementations —
the directory-of-JSON backend and the SQLite backend — covering the
three concerns: the tenant registry, versioned snapshots with listing
metadata, and the write-ahead ingest log (including sequence-number
monotonicity across prunes).  Backend-specific sections pin the
DirectoryBackend's adoption of legacy ``SnapshotStore`` directories,
the SQLiteBackend's WAL-mode pragmas and trigger-maintained listing
table, and the atomic-write durability regression: a failed write
never leaves a temp file behind.
"""

from __future__ import annotations

import json
import os
import sqlite3

import numpy as np
import pytest

from repro.serving import QueryService, SnapshotStore
from repro.storage import (BACKENDS, DirectoryBackend, SQLiteBackend,
                           StorageBackend, TenantExistsError,
                           UnknownTenantError, open_backend,
                           validate_tenant_name)


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path) -> StorageBackend:
    if request.param == "json":
        built = DirectoryBackend(tmp_path / "store")
    else:
        built = SQLiteBackend(tmp_path / "store.db")
    yield built
    built.close()


def _service_document(seed: int = 7, reports: int = 50) -> dict:
    service = QueryService("TDG", 1.0, seed=seed, domain_size=8)
    rng = np.random.default_rng(seed)
    service.ingest(rng.integers(0, 8, size=(reports, 2)))
    service.refinalize()
    return service.state_dict()


# ----------------------------------------------------------------------
# Tenant registry
# ----------------------------------------------------------------------
def test_tenant_crud_round_trip(backend):
    record = backend.create_tenant("acme", {"mechanism": "TDG",
                                            "epsilon": 0.5})
    assert record.name == "acme"
    assert record.created_at
    assert backend.get_tenant("acme").config["epsilon"] == 0.5
    assert [r.name for r in backend.list_tenants()] == ["acme"]
    assert backend.has_tenant("acme")
    backend.delete_tenant("acme")
    assert not backend.has_tenant("acme")
    assert backend.list_tenants() == []


def test_tenant_errors(backend):
    backend.create_tenant("acme", {})
    with pytest.raises(TenantExistsError):
        backend.create_tenant("acme", {})
    with pytest.raises(UnknownTenantError):
        backend.get_tenant("nope")
    with pytest.raises(UnknownTenantError):
        backend.delete_tenant("nope")
    with pytest.raises(UnknownTenantError):
        backend.save_snapshot("nope", {"mechanism": "TDG"})
    with pytest.raises(UnknownTenantError):
        backend.append_ingest("nope", [[1, 2]])


@pytest.mark.parametrize("bad", ["", "a/b", "a b", ".hidden", "x" * 65,
                                 "tab\tname"])
def test_tenant_name_validation(backend, bad):
    with pytest.raises(ValueError):
        backend.create_tenant(bad, {})


def test_validate_tenant_name_accepts_safe_names():
    for name in ("default", "acme", "a-b_c.d", "Tenant42"):
        assert validate_tenant_name(name) == name


# ----------------------------------------------------------------------
# Snapshots + listing metadata
# ----------------------------------------------------------------------
def test_snapshot_save_load_round_trip(backend):
    backend.create_tenant("acme", {})
    document = _service_document()
    record = backend.save_snapshot("acme", document, wal_seq=3)
    assert record.version == 1
    assert record.wal_seq == 3
    assert record.size_bytes > 0
    assert record.mechanism == "TDG"
    assert record.reports_ingested == 50
    loaded, loaded_record = backend.load_snapshot("acme")
    assert loaded == document
    assert loaded_record.version == 1
    assert loaded_record.wal_seq == 3


def test_snapshot_versions_increment_and_listing(backend):
    backend.create_tenant("acme", {})
    for wal_seq in (1, 2, 3):
        backend.save_snapshot("acme", _service_document(), wal_seq=wal_seq)
    records = backend.list_snapshots("acme")
    assert [r.version for r in records] == [1, 2, 3]
    assert [r.wal_seq for r in records] == [1, 2, 3]
    assert backend.latest_snapshot_version("acme") == 3
    # Explicit-version load picks the requested document's record.
    _, record = backend.load_snapshot("acme", version=2)
    assert record.version == 2


def test_snapshot_listing_covers_all_tenants(backend):
    backend.create_tenant("a", {})
    backend.create_tenant("b", {})
    backend.save_snapshot("a", _service_document())
    backend.save_snapshot("b", _service_document())
    tenants = {record.tenant for record in backend.list_snapshots()}
    assert {"a", "b"} <= tenants


def test_snapshot_prune_keeps_newest(backend):
    backend.create_tenant("acme", {})
    for _ in range(4):
        backend.save_snapshot("acme", _service_document())
    assert backend.prune_snapshots("acme", 2) == 2
    assert [r.version for r in backend.list_snapshots("acme")] == [3, 4]
    # Pruned versions are gone for load too.
    with pytest.raises(FileNotFoundError):
        backend.load_snapshot("acme", version=1)


def test_load_snapshot_empty_raises_file_not_found(backend):
    backend.create_tenant("acme", {})
    with pytest.raises(FileNotFoundError):
        backend.load_snapshot("acme")


def test_snapshot_record_document_shape(backend):
    backend.create_tenant("acme", {})
    record = backend.save_snapshot("acme", _service_document(), wal_seq=9)
    document = record.to_document()
    assert document["tenant"] == "acme"
    assert document["version"] == 1
    assert document["wal_seq"] == 9
    assert json.dumps(document)  # plain JSON


# ----------------------------------------------------------------------
# Write-ahead ingest log
# ----------------------------------------------------------------------
def test_wal_append_pending_prune(backend):
    backend.create_tenant("acme", {})
    assert backend.last_ingest_seq("acme") == 0
    assert backend.append_ingest("acme", [[1, 2]], 8) == 1
    assert backend.append_ingest("acme", [[3, 4], [5, 6]], 8) == 2
    entries = backend.pending_ingest("acme")
    assert [e.seq for e in entries] == [1, 2]
    assert entries[1].rows == [[3, 4], [5, 6]]
    assert entries[0].domain_size == 8
    assert backend.pending_ingest("acme", after_seq=1)[0].seq == 2
    assert backend.ingest_log_depth("acme") == 2
    assert backend.prune_ingest("acme", 1) == 1
    assert [e.seq for e in backend.pending_ingest("acme")] == [2]


def test_wal_sequence_monotonic_across_prunes(backend):
    """Pruning every entry must not restart sequence numbering:
    otherwise a later snapshot's recorded position would shadow new
    entries and recovery would silently drop them."""
    backend.create_tenant("acme", {})
    backend.append_ingest("acme", [[1, 2]])
    backend.append_ingest("acme", [[3, 4]])
    backend.prune_ingest("acme", 2)
    assert backend.ingest_log_depth("acme") == 0
    assert backend.last_ingest_seq("acme") == 2
    assert backend.append_ingest("acme", [[5, 6]]) == 3


def test_wal_discard_removes_one_entry(backend):
    backend.create_tenant("acme", {})
    backend.append_ingest("acme", [[1, 2]])
    seq = backend.append_ingest("acme", [[3, 4]])
    backend.discard_ingest("acme", seq)
    assert [e.seq for e in backend.pending_ingest("acme")] == [1]
    # Discard does not lower the sequence horizon.
    assert backend.last_ingest_seq("acme") == 2


def test_wal_depth_across_tenants(backend):
    backend.create_tenant("a", {})
    backend.create_tenant("b", {})
    backend.append_ingest("a", [[1, 2]])
    backend.append_ingest("b", [[3, 4]])
    backend.append_ingest("b", [[5, 6]])
    assert backend.ingest_log_depth("a") == 1
    assert backend.ingest_log_depth("b") == 2
    assert backend.ingest_log_depth() == 3


def test_delete_tenant_drops_snapshots_and_log(backend):
    backend.create_tenant("acme", {})
    backend.save_snapshot("acme", _service_document())
    backend.append_ingest("acme", [[1, 2]])
    backend.delete_tenant("acme")
    backend.create_tenant("acme", {})
    assert backend.list_snapshots("acme") == []
    assert backend.pending_ingest("acme") == []


def test_describe_and_location(backend):
    backend.create_tenant("acme", {})
    backend.append_ingest("acme", [[1, 2]])
    description = backend.describe()
    assert description["backend"] in BACKENDS
    assert description["tenants"] == 1
    assert description["pending_ingest_log"] == 1
    assert description["location"] == backend.location()


def test_open_backend_dispatch(tmp_path):
    with open_backend("json", str(tmp_path / "d")) as built:
        assert isinstance(built, DirectoryBackend)
    with open_backend("sqlite", str(tmp_path / "s.db")) as built:
        assert isinstance(built, SQLiteBackend)
    with pytest.raises(ValueError, match="unknown storage backend"):
        open_backend("postgres", "x")


# ----------------------------------------------------------------------
# DirectoryBackend: legacy store adoption
# ----------------------------------------------------------------------
def test_directory_backend_adopts_legacy_snapshot_store(tmp_path):
    """A plain SnapshotStore directory opens as the default tenant's
    history — size and creation time fall back to stat, wal_seq to 0."""
    store = SnapshotStore(tmp_path)
    document = _service_document()
    store.save(document)
    backend = DirectoryBackend(tmp_path)
    records = backend.list_snapshots("default")
    assert [r.version for r in records] == [1]
    assert records[0].size_bytes == store.path_of(1).stat().st_size
    assert records[0].wal_seq == 0
    loaded, _ = backend.load_snapshot("default")
    assert loaded == document


def test_directory_backend_meta_sidecars_ignored_by_snapshot_store(tmp_path):
    """Sidecar .meta.json files must not count as snapshot versions."""
    backend = DirectoryBackend(tmp_path)
    backend.save_snapshot("default", _service_document())
    assert SnapshotStore(tmp_path).versions() == [1]


# ----------------------------------------------------------------------
# SQLiteBackend: pragmas, listing triggers, cascade
# ----------------------------------------------------------------------
def test_sqlite_backend_runs_in_wal_mode(tmp_path):
    backend = SQLiteBackend(tmp_path / "s.db")
    assert str(backend.pragma("journal_mode")).lower() == "wal"
    assert int(backend.pragma("foreign_keys")) == 1
    backend.close()


def test_sqlite_listing_table_maintained_by_triggers(tmp_path):
    backend = SQLiteBackend(tmp_path / "s.db")
    backend.create_tenant("acme", {})
    backend.save_snapshot("acme", _service_document())
    backend.save_snapshot("acme", _service_document())
    backend.prune_snapshots("acme", 1)
    backend.close()
    connection = sqlite3.connect(tmp_path / "s.db")
    try:
        rows = connection.execute(
            "SELECT tenant, version FROM snapshot_listing").fetchall()
        assert rows == [("acme", 2)]
    finally:
        connection.close()


def test_sqlite_delete_tenant_cascades(tmp_path):
    backend = SQLiteBackend(tmp_path / "s.db")
    backend.create_tenant("acme", {})
    backend.save_snapshot("acme", _service_document())
    backend.append_ingest("acme", [[1, 2]])
    backend.delete_tenant("acme")
    backend.close()
    connection = sqlite3.connect(tmp_path / "s.db")
    try:
        for table in ("snapshots", "snapshot_blobs", "ingest_log",
                      "snapshot_listing"):
            count = connection.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            assert count == 0, table
    finally:
        connection.close()


def test_sqlite_reopen_preserves_everything(tmp_path):
    path = tmp_path / "s.db"
    document = _service_document()
    with SQLiteBackend(path) as backend:
        backend.create_tenant("acme", {"mechanism": "TDG"})
        backend.save_snapshot("acme", document, wal_seq=1)
        backend.append_ingest("acme", [[1, 2]], 8)
    with SQLiteBackend(path) as backend:
        assert backend.get_tenant("acme").config == {"mechanism": "TDG"}
        loaded, record = backend.load_snapshot("acme")
        assert loaded == document and record.wal_seq == 1
        assert backend.pending_ingest("acme")[0].rows == [[1, 2]]
        assert backend.last_ingest_seq("acme") == 1


# ----------------------------------------------------------------------
# Atomic-write durability regression (SnapshotStore + backends)
# ----------------------------------------------------------------------
def _temp_files(directory) -> list:
    return [path for path in directory.iterdir()
            if path.suffix == ".tmp" or path.name.endswith(".json.tmp")]


def test_snapshot_store_failed_save_leaves_no_temp_file(tmp_path):
    """A save that dies mid-serialization must clean up its temp file
    and must not claim a version slot."""
    store = SnapshotStore(tmp_path)
    store.save({"ok": 1})
    with pytest.raises(TypeError):
        store.save({"bad": object()})  # not JSON-serializable
    assert store.versions() == [1]
    assert _temp_files(tmp_path) == []


def test_snapshot_store_failed_link_leaves_no_temp_file(tmp_path,
                                                        monkeypatch):
    """Even a failure at the claim step (os.link) cleans up."""
    store = SnapshotStore(tmp_path)

    def refuse_link(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "link", refuse_link)
    with pytest.raises(OSError, match="disk full"):
        store.save({"ok": 1})
    monkeypatch.undo()
    assert store.versions() == []
    assert _temp_files(tmp_path) == []
    # The store still works after the failure.
    assert store.save({"ok": 1}).version == 1


def test_directory_backend_failed_write_leaves_no_temp_file(tmp_path):
    backend = DirectoryBackend(tmp_path)
    backend.create_tenant("acme", {})
    with pytest.raises(TypeError):
        backend.append_ingest("acme", [[object()]])
    wal_dir = tmp_path / "wal" / "acme"
    assert _temp_files(wal_dir) == []
    assert backend.pending_ingest("acme") == []
