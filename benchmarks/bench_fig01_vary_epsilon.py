"""Figure 1: MAE vs privacy budget ε for all mechanisms (λ = 2 and 4).

Paper shape to reproduce: every LDP mechanism improves with ε; HIO is the
worst (often worse than Uni); LHIO beats HIO by about an order of
magnitude at small ε; TDG and HDG have a clear advantage, with HDG best.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_1(benchmark):
    scale = current_scale()

    def run():
        return figures.figure_1_vary_epsilon(
            datasets=scale.datasets, epsilons=scale.epsilons,
            query_dimensions=(2, 4), n_users=scale.n_users,
            n_attributes=scale.n_attributes, domain_size=scale.domain_size,
            n_queries=scale.n_queries, n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig01_vary_epsilon",
           figures.format_figure_results(results, "Figure 1: MAE vs epsilon"))
    # Shape check: HDG beats Uni and HIO at the largest epsilon on every panel.
    for (dataset, dimension), sweep in results.items():
        series = sweep.series()
        assert series["HDG"][-1] < series["Uni"][-1]
        assert series["HDG"][-1] < series["HIO"][-1]
