"""Common interface for every multi-dimensional range-query mechanism.

TDG, HDG and all baselines (Uni, MSW, CALM, HIO, LHIO) implement
:class:`RangeQueryMechanism`: ``fit`` runs the one-shot LDP collection
protocol over a dataset, ``answer`` / ``answer_workload`` then answer
arbitrarily many range queries from the collected (already private)
summaries without touching raw data again.
"""

from __future__ import annotations

import abc

import numpy as np

from ..datasets import Dataset
from ..queries import RangeQuery


class RangeQueryMechanism(abc.ABC):
    """Base class for ε-LDP multi-dimensional range-query mechanisms.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.  Every user sends exactly one report
        produced by an ε-LDP frequency oracle, so the whole mechanism
        satisfies ε-LDP.
    seed:
        Optional seed for all randomness (user grouping, perturbation).
    """

    #: Short name used in experiment tables (overridden by subclasses).
    name: str = "mechanism"

    def __init__(self, epsilon: float, seed: int | None = None):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.rng = np.random.default_rng(seed)
        self._fitted = False
        self._n_attributes: int | None = None
        self._domain_size: int | None = None

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "RangeQueryMechanism":
        """Run the LDP collection protocol over ``dataset`` and return self."""
        self._n_attributes = dataset.n_attributes
        self._domain_size = dataset.domain_size
        self._fit(dataset)
        self._fitted = True
        return self

    @abc.abstractmethod
    def _fit(self, dataset: Dataset) -> None:
        """Mechanism-specific collection logic."""

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(self, query: RangeQuery) -> float:
        """Estimated answer of one range query (fraction in [0, 1] ideally)."""
        self._require_fitted()
        self._validate_query(query)
        return float(self._answer(query))

    @abc.abstractmethod
    def _answer(self, query: RangeQuery) -> float:
        """Mechanism-specific answering logic."""

    def answer_workload(self, queries: list[RangeQuery]) -> np.ndarray:
        """Estimated answers for a list of queries."""
        return np.array([self.answer(query) for query in queries])

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before answering queries")

    def _validate_query(self, query: RangeQuery) -> None:
        assert self._n_attributes is not None and self._domain_size is not None
        for predicate in query.predicates:
            if predicate.attribute >= self._n_attributes:
                raise ValueError(
                    f"query restricts attribute {predicate.attribute} but the "
                    f"fitted dataset only has {self._n_attributes} attributes")
            if predicate.high >= self._domain_size:
                raise ValueError(
                    f"query interval [{predicate.low}, {predicate.high}] exceeds "
                    f"the fitted domain size {self._domain_size}")
