"""Tests for the Norm-Sub non-negativity post-processor."""

import numpy as np
import pytest

from repro.postprocess import clip_to_zero, norm_sub


def test_already_valid_distribution_unchanged():
    values = np.array([0.25, 0.25, 0.25, 0.25])
    result = norm_sub(values)
    np.testing.assert_allclose(result, values)


def test_negative_entries_removed():
    values = np.array([0.6, 0.5, -0.1])
    result = norm_sub(values)
    assert (result >= 0).all()
    assert result.sum() == pytest.approx(1.0)


def test_result_sums_to_target():
    rng = np.random.default_rng(0)
    values = rng.normal(0.1, 0.3, size=50)
    result = norm_sub(values, total=1.0)
    assert result.sum() == pytest.approx(1.0, abs=1e-9)
    assert (result >= 0).all()


def test_custom_total():
    values = np.array([3.0, -1.0, 2.0])
    result = norm_sub(values, total=2.0)
    assert result.sum() == pytest.approx(2.0)
    assert (result >= 0).all()


def test_all_negative_falls_back_to_uniform():
    values = np.array([-1.0, -2.0, -3.0, -4.0])
    result = norm_sub(values)
    np.testing.assert_allclose(result, 0.25)


def test_preserves_shape_for_matrices():
    rng = np.random.default_rng(1)
    values = rng.normal(1 / 16, 0.1, size=(4, 4))
    result = norm_sub(values)
    assert result.shape == (4, 4)
    assert result.sum() == pytest.approx(1.0)


def test_preserves_order_of_large_entries():
    values = np.array([0.9, 0.4, -0.2, -0.1])
    result = norm_sub(values)
    # Norm-Sub shifts positive entries by a common amount, so order among
    # surviving entries is preserved.
    assert result[0] > result[1]
    assert result[2] == 0.0 and result[3] == 0.0


def test_zero_total_allowed():
    values = np.array([0.5, -0.5])
    result = norm_sub(values, total=0.0)
    assert (result >= 0).all()
    assert result.sum() == pytest.approx(0.0, abs=1e-9)


def test_rejects_negative_total():
    with pytest.raises(ValueError):
        norm_sub(np.array([1.0]), total=-1.0)


def test_clip_to_zero_only_clips():
    values = np.array([0.5, -0.2, 0.3])
    result = clip_to_zero(values)
    np.testing.assert_allclose(result, [0.5, 0.0, 0.3])
    # The original array is untouched.
    assert values[1] == -0.2
