"""Ingest tier orchestration: router, collector workers, merge coordinator.

:class:`IngestTier` is the parent-process face of the multi-process
ingest path (see ``docs/ingest.md``):

* :meth:`submit` assigns each report a global key (its submission
  index), routes rows to workers through a
  :class:`~repro.ingest.routing.ConsistentHashRouter`, and enqueues
  per-worker sub-batches in submission order;
* collector worker processes (:mod:`repro.ingest.worker`) run
  ``partial_fit`` into shared-memory accumulator blocks (stream mode)
  or append rows to shared row logs (refit mode);
* :class:`MergeCoordinator` folds the worker blocks into a fresh
  serving estimator through the existing ``load_shard_state`` /
  ``finalize`` path (stream) or a deterministic re-``fit`` over the
  key-ordered row log (refit), so distributed results stay bitwise
  identical to the equivalent single-process ingest.

Back-pressure contract: worker inboxes are bounded queues.  By default
``submit`` blocks when a worker falls behind (bounded memory, no
loss); with ``drop_overflow=True`` it drops the sub-batch instead and
counts it in :meth:`metrics` (``queue_drops``), trading determinism
for liveness.  Refit row logs are fixed capacity; overflowing batches
are dropped whole and counted per worker (``dropped_rows``).

Determinism: with no drops, the tier's finalized estimator is a pure
function of ``(mechanism config, seed, n_workers, replicas, router
seed, submitted row sequence)`` — independent of timing, because
routing keys are submission indices and every worker consumes its
sub-batches FIFO.  ``tests/test_distributed_ingest.py`` pins this
against the single-process execution of the same shard plan.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import queue as queue_module
import time
import weakref

import numpy as np

from ..datasets import Dataset
from ..pipeline.parallel import shard_seed
from .routing import ConsistentHashRouter
from .shared_state import (HEADER_BATCHES_DONE, HEADER_DROPPED_ROWS,
                           HEADER_FIXED_FIELDS, HEADER_TOTAL_REPORTS,
                           AccumulatorLayout, SharedAccumulatorBlock,
                           SharedRowBuffer)
from .worker import MECHANISM_CLASSES, WorkerSpec, worker_main

#: Tier ingest modes (mirrors QueryService.INGEST_MODES semantics).
STREAM_MODE = "stream"
REFIT_MODE = "refit"

#: Default per-worker refit row-log capacity (rows).
DEFAULT_ROW_CAPACITY = 1 << 18

#: Seconds to wait for a worker's ready handshake before giving up.
STARTUP_TIMEOUT = 60.0

#: Seconds to wait for a worker's block lock.  A worker killed while
#: publishing (SIGKILL inside its locked ``partial_fit`` window) leaves
#: the lock held forever; every parent-side acquisition is bounded so a
#: dead worker surfaces as :class:`IngestWorkerError` instead of a
#: deadlock.
LOCK_TIMEOUT = 10.0


class IngestError(RuntimeError):
    """An operation the ingest tier cannot perform."""


class IngestWorkerError(IngestError):
    """A collector worker died or reported a fatal error."""


class IngestBackpressureError(IngestError):
    """Bounded ingest capacity was exhausted."""


def _queue_depth(q) -> int | None:
    """Approximate queue depth; None where unsupported (macOS)."""
    try:
        return q.qsize()
    except NotImplementedError:
        return None


def _shutdown(processes, inboxes, outboxes, blocks) -> None:
    """Stop workers and release queues + shared memory (idempotent)."""
    for process, inbox in zip(processes, inboxes):
        if process.is_alive():
            try:
                inbox.put_nowait(("stop",))
            except queue_module.Full:
                process.terminate()
    for process in processes:
        process.join(timeout=5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)
    for q in list(inboxes) + list(outboxes):
        q.close()
        q.cancel_join_thread()
    for block in blocks:
        block.close()


class MergeCoordinator:
    """Folds worker accumulators into a fresh serving estimator.

    The coordinator does not run on its own timer — the owner (a
    :class:`~repro.serving.QueryService` re-finalize policy, a
    benchmark loop) decides when to merge; the coordinator contributes
    the consistent fold and the merge-lag bookkeeping that ``/healthz``
    reports.
    """

    def __init__(self, tier: "IngestTier"):
        self.tier = tier
        self.merges = 0
        self.reports_merged = 0
        self.last_merge_seconds: float | None = None
        #: Epoch-publication bookkeeping: merged estimators the owning
        #: service actually swapped in as published read epochs.
        self.epochs_published = 0
        self.last_published_epoch: int | None = None

    def merge(self):
        """Flush, fold every worker's state, finalize a fresh estimator."""
        started = time.perf_counter()
        estimator, reports = self.tier._finalize_estimator()
        self.merges += 1
        self.reports_merged = reports
        self.last_merge_seconds = time.perf_counter() - started
        return estimator

    def record_publication(self, epoch_id: int) -> None:
        """Note that a merged estimator was published as ``epoch_id``.

        Called by the owning :class:`~repro.serving.QueryService` after
        its epoch swap, so ``/healthz`` can show how far merge output
        lags behind what readers currently observe.
        """
        self.epochs_published += 1
        self.last_published_epoch = int(epoch_id)

    @property
    def merge_lag_reports(self) -> int:
        """Reports ingested but not yet folded into a serving estimator."""
        return self.tier.reports_total - self.reports_merged

    def status(self) -> dict:
        return {
            "merges": self.merges,
            "reports_merged": self.reports_merged,
            "merge_lag_reports": self.merge_lag_reports,
            "last_merge_seconds": self.last_merge_seconds,
            "epochs_published": self.epochs_published,
            "last_published_epoch": self.last_published_epoch,
        }


class IngestTier:
    """Multi-process ingest: consistent-hash routed collector workers.

    Parameters
    ----------
    mechanism:
        Paper name of the mechanism (any of the nine).
    epsilon:
        Per-user privacy budget.
    n_workers:
        Number of collector processes.
    n_attributes, domain_size:
        Report schema (must be known up front to size shared memory).
    seed:
        Base seed; worker ``i`` collects under ``shard_seed(seed, i)``
        (the :func:`repro.pipeline.parallel_fit` convention).  Refit
        mode refits with ``seed`` itself, matching the single-process
        refit service bitwise.
    ingest_mode:
        ``"stream"`` (shardable mechanisms; shared accumulator blocks)
        or ``"refit"`` (any mechanism; shared row logs).  Defaults to
        stream when the mechanism supports sharding, refit otherwise.
    planning_users:
        Population fed to the granularity guideline when the mechanism
        has no explicit granularity (stream mode).  Callers that learn
        it from the first batch must resolve it before constructing
        the tier.
    total_users:
        Forwarded to every worker's ``partial_fit`` (service setting).
    worker_states:
        Per-worker restore payloads from :meth:`capture_worker_states`
        (snapshot recovery); workers resume their exact accumulator
        and RNG state.
    key_base:
        First report key this tier will assign — the number of reports
        already routed before a restart, so WAL replay reproduces the
        original routing.
    """

    def __init__(self, mechanism: str, epsilon: float, *, n_workers: int,
                 n_attributes: int, domain_size: int,
                 seed: int | None = None, ingest_mode: str | None = None,
                 planning_users: int | None = None,
                 total_users: int | None = None,
                 mechanism_kwargs: dict | None = None,
                 replicas: int = 64, queue_batches: int = 64,
                 row_capacity: int | None = None,
                 drop_overflow: bool = False,
                 worker_states: list | None = None, key_base: int = 0,
                 start_method: str | None = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        try:
            self._factory = MECHANISM_CLASSES[mechanism]
        except KeyError:
            raise ValueError(f"unknown mechanism {mechanism!r}; "
                             f"known: {sorted(MECHANISM_CLASSES)}") from None
        self.mechanism = mechanism
        self.epsilon = float(epsilon)
        self.n_workers = int(n_workers)
        self.n_attributes = int(n_attributes)
        self.domain_size = int(domain_size)
        self.seed = seed
        self.planning_users = planning_users
        self.total_users = total_users
        self.replicas = int(replicas)
        self.drop_overflow = bool(drop_overflow)
        self._mechanism_kwargs = dict(mechanism_kwargs or {})
        if worker_states is not None and len(worker_states) != n_workers:
            raise ValueError(
                f"got {len(worker_states)} worker states for {n_workers} "
                "workers; restore with the same worker count")

        template = self._factory(self.epsilon, **self._mechanism_kwargs)
        if ingest_mode is None:
            ingest_mode = (STREAM_MODE if template.supports_sharding
                           else REFIT_MODE)
        if ingest_mode not in (STREAM_MODE, REFIT_MODE):
            raise ValueError(f"unknown ingest_mode {ingest_mode!r}; "
                             f"known: ['{STREAM_MODE}', '{REFIT_MODE}']")
        if ingest_mode == STREAM_MODE and not template.supports_sharding:
            raise ValueError(
                f"{mechanism} does not support sharded aggregation; "
                "use ingest_mode='refit'")
        self.ingest_mode = ingest_mode

        if ingest_mode == STREAM_MODE:
            template.prepare_aggregation(self.n_attributes, self.domain_size,
                                         total_users=planning_users)
            self._slots = template.accumulator_slots()
            self._layout = AccumulatorLayout(self._slots)
            self._base_state = template.shard_state()
            self.row_capacity = None
        else:
            self._slots = None
            self._layout = None
            self._base_state = None
            self.row_capacity = int(row_capacity
                                    or max(total_users or 0,
                                           DEFAULT_ROW_CAPACITY))

        start_methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            start_method or ("fork" if "fork" in start_methods else "spawn"))
        unregister = self._ctx.get_start_method() != "fork"

        self._router = ConsistentHashRouter(self.n_workers,
                                            replicas=self.replicas,
                                            seed=seed or 0)
        self._blocks: list = []
        self._locks: list = []
        self._inboxes: list = []
        self._outboxes: list = []
        self._processes: list = []
        self._stray: dict[int, list] = {}
        self._next_key = int(key_base)
        self._global_seq = 0
        self._batches_routed = [0] * self.n_workers
        self._reports_routed = 0
        self.queue_drops = 0
        self.coordinator = MergeCoordinator(self)

        for index in range(self.n_workers):
            if ingest_mode == STREAM_MODE:
                block = SharedAccumulatorBlock.create(self._layout)
            else:
                block = SharedRowBuffer.create(self.row_capacity,
                                               self.n_attributes)
            lock = self._ctx.Lock()
            inbox = self._ctx.Queue(maxsize=int(queue_batches))
            outbox = self._ctx.Queue()
            spec = WorkerSpec(
                index=index, mode=ingest_mode, mechanism=mechanism,
                epsilon=self.epsilon,
                seed=(shard_seed(seed, index) if seed is not None else None),
                mechanism_kwargs=dict(self._mechanism_kwargs),
                n_attributes=self.n_attributes,
                domain_size=self.domain_size,
                planning_users=planning_users, total_users=total_users,
                shm_name=block.name, slots=self._slots,
                row_capacity=self.row_capacity,
                initial_state=(worker_states[index]
                               if worker_states is not None else None),
                unregister_shm=unregister)
            process = self._ctx.Process(
                target=worker_main, args=(spec, inbox, outbox, lock),
                daemon=True, name=f"repro-ingest-{mechanism}-{index}")
            self._blocks.append(block)
            self._locks.append(lock)
            self._inboxes.append(inbox)
            self._outboxes.append(outbox)
            self._processes.append(process)
            process.start()
        self._finalizer = weakref.finalize(
            self, _shutdown, self._processes, self._inboxes, self._outboxes,
            self._blocks)
        for index in range(self.n_workers):
            self._await(index, "ready", STARTUP_TIMEOUT)
        self._restored_reports = sum(
            int(block.header[HEADER_TOTAL_REPORTS]) for block in self._blocks)

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _await(self, index: int, kind: str, timeout: float):
        """Next outbox message of ``kind`` from one worker."""
        stray = self._stray.get(index)
        if stray:
            for position, message in enumerate(stray):
                if message[0] == kind:
                    return stray.pop(position)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise IngestWorkerError(
                    f"timed out waiting for {kind!r} from collector worker "
                    f"{index}")
            try:
                message = self._outboxes[index].get(
                    timeout=min(remaining, 0.5))
            except queue_module.Empty:
                if not self._processes[index].is_alive():
                    raise IngestWorkerError(
                        f"collector worker {index} died (exit code "
                        f"{self._processes[index].exitcode}) before "
                        f"replying {kind!r}") from None
                continue
            if message[0] == "error":
                raise IngestWorkerError(
                    f"collector worker {index} failed:\n{message[2]}")
            if message[0] == kind:
                return message
            self._stray.setdefault(index, []).append(message)

    def _check_worker(self, index: int) -> None:
        """Raise if a worker reported an error or silently died."""
        while True:
            try:
                message = self._outboxes[index].get_nowait()
            except queue_module.Empty:
                break
            if message[0] == "error":
                raise IngestWorkerError(
                    f"collector worker {index} failed:\n{message[2]}")
            self._stray.setdefault(index, []).append(message)
        process = self._processes[index]
        if not process.is_alive():
            raise IngestWorkerError(
                f"collector worker {index} died (exit code "
                f"{process.exitcode}); restart the service to recover "
                "through the WAL replay path")

    @contextlib.contextmanager
    def _worker_lock(self, index: int, timeout: float = LOCK_TIMEOUT):
        """Bounded acquisition of one worker's block lock.

        A worker that dies holding its lock (SIGKILL mid-publish)
        abandons it; blocking indefinitely would deadlock the parent,
        so a timeout re-checks the worker and raises instead.
        """
        if not self._locks[index].acquire(timeout=timeout):
            self._check_worker(index)  # dead worker: the precise error
            raise IngestWorkerError(
                f"collector worker {index} held its lock for more than "
                f"{timeout}s; it is likely stuck — restart the service "
                "to recover through the WAL replay path")
        try:
            yield
        finally:
            self._locks[index].release()

    def worker_pids(self) -> list[int]:
        """OS pids of the collector workers (chaos tests kill these)."""
        return [process.pid for process in self._processes]

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------
    @property
    def reports_routed(self) -> int:
        """Reports submitted through this tier instance."""
        return self._reports_routed

    @property
    def reports_total(self) -> int:
        """Reports in the tier overall (restored state + routed)."""
        return self._restored_reports + self._reports_routed

    @property
    def next_key(self) -> int:
        """Key the next submitted report will receive."""
        return self._next_key

    def submit(self, rows) -> dict:
        """Route one batch of reports to the collector workers.

        ``rows`` is an ``(n, d)`` integer array.  Each row's key is its
        global submission index; sub-batches preserve submission order
        per worker.  Blocks while any target worker's inbox is full
        unless the tier was built with ``drop_overflow=True``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != self.n_attributes:
            raise ValueError(
                f"rows must be (n, {self.n_attributes}); got shape "
                f"{rows.shape}")
        n = rows.shape[0]
        keys = np.arange(self._next_key, self._next_key + n, dtype=np.int64)
        split = self._router.split(keys)
        routed = dropped = 0
        for worker_index in sorted(split):
            positions = split[worker_index]
            sub_rows = rows[positions]
            sequence = self._global_seq
            self._global_seq += 1
            self._check_worker(worker_index)
            if self.ingest_mode == STREAM_MODE:
                item = ("batch", sequence, sub_rows)
            else:
                item = ("batch", sequence, keys[positions], sub_rows)
            if self.drop_overflow:
                try:
                    self._inboxes[worker_index].put_nowait(item)
                except queue_module.Full:
                    self.queue_drops += 1
                    dropped += sub_rows.shape[0]
                    continue
            else:
                self._inboxes[worker_index].put(item)
            self._batches_routed[worker_index] += 1
            routed += sub_rows.shape[0]
        self._next_key += n
        self._reports_routed += routed
        return {"submitted": n, "routed": routed, "dropped": dropped}

    def flush(self, timeout: float = 120.0) -> None:
        """Wait until every worker has applied all routed batches."""
        deadline = time.monotonic() + timeout
        while True:
            lagging = []
            for index in range(self.n_workers):
                if self._locks[index].acquire(timeout=0.5):
                    try:
                        done = int(
                            self._blocks[index].header[HEADER_BATCHES_DONE])
                    finally:
                        self._locks[index].release()
                else:
                    done = -1  # lock abandoned or long-held: keep waiting
                if done < self._batches_routed[index]:
                    lagging.append(index)
            if not lagging:
                return
            for index in lagging:
                self._check_worker(index)
            if time.monotonic() >= deadline:
                raise IngestError(
                    f"flush timed out after {timeout}s; workers still "
                    f"applying batches: {lagging}")
            time.sleep(0.002)

    # ------------------------------------------------------------------
    # Merge path
    # ------------------------------------------------------------------
    def merged_shard_state(self) -> dict:
        """Fold every worker's shared accumulators into one shard state.

        Flushes first, then copies each worker's block under its lock
        (a per-worker batch-consistent cut) and sums support vectors in
        worker order — the same left fold ``merge`` performs — so the
        result loads into ``load_shard_state`` and finalizes bitwise
        identically to the single-process execution of the shard plan.
        No JSON round-trip: the state dict carries the summed arrays.
        """
        if self.ingest_mode != STREAM_MODE:
            raise IngestError("merged_shard_state requires stream mode; "
                              "refit tiers reassemble rows instead")
        self.flush()
        total_reports = 0
        slot_sums: dict[str, np.ndarray | None] = {
            key: None for key, _ in self._slots}
        slot_counts = [0] * len(self._slots)
        for index in range(self.n_workers):
            with self._worker_lock(index):
                header = self._blocks[index].header.copy()
                payload = {key: view.copy() for key, view
                           in self._blocks[index].views().items()}
            total_reports += int(header[HEADER_TOTAL_REPORTS])
            for position, (key, _) in enumerate(self._slots):
                slot_counts[position] += int(
                    header[HEADER_FIXED_FIELDS + position])
                if slot_sums[key] is None:
                    slot_sums[key] = payload[key]
                else:
                    slot_sums[key] += payload[key]
        accumulators: dict[str, dict] = {}
        for position, (key, _) in enumerate(self._slots):
            section, _, subkey = key.partition(":")
            entry = None
            if slot_counts[position] > 0:
                entry = {"supports": slot_sums[key],
                         "n_reports": slot_counts[position]}
            accumulators.setdefault(section, {})[subkey] = entry
        state = dict(self._base_state)
        state["total_reports"] = total_reports
        state["accumulators"] = accumulators
        return state

    def assembled_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """All buffered refit rows, reassembled in global key order.

        Because keys are submission indices, the returned row order is
        exactly the single-process ingest order, which is what makes
        the distributed refit bitwise identical to buffering in one
        process.
        """
        if self.ingest_mode != REFIT_MODE:
            raise IngestError("assembled_rows requires refit mode")
        self.flush()
        keys_parts, rows_parts = [], []
        for index in range(self.n_workers):
            with self._worker_lock(index):
                buffer = self._blocks[index]
                count = buffer.n_rows
                keys_parts.append(buffer.keys[:count].copy())
                rows_parts.append(buffer.rows[:count].copy())
        keys = np.concatenate(keys_parts)
        rows = (np.concatenate(rows_parts, axis=0) if keys.size
                else np.empty((0, self.n_attributes), dtype=np.int64))
        order = np.argsort(keys, kind="stable")
        return rows[order], keys[order]

    def _finalize_estimator(self):
        """Build and finalize a fresh estimator from the workers' state."""
        if self.ingest_mode == STREAM_MODE:
            state = self.merged_shard_state()
            clone = self._factory(self.epsilon, **self._mechanism_kwargs)
            clone.load_shard_state(state)
            clone.finalize()
            return clone, int(state["total_reports"])
        rows, _ = self.assembled_rows()
        if rows.shape[0] == 0:
            raise IngestError("no reports ingested yet")
        clone = self._factory(self.epsilon, seed=self.seed,
                              **self._mechanism_kwargs)
        clone.fit(Dataset(rows, self.domain_size))
        return clone, rows.shape[0]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def capture_worker_states(self) -> list:
        """Per-worker restore payloads (stream: shard + RNG state).

        Flushes first so each payload reflects every routed batch; the
        round-trip through :class:`IngestTier` construction with
        ``worker_states`` resumes the exact per-worker accumulator and
        RNG streams, which keeps post-restore ingest bitwise identical
        to an uninterrupted run.
        """
        self.flush()
        states = []
        for index in range(self.n_workers):
            self._inboxes[index].put(("state",))
        for index in range(self.n_workers):
            message = self._await(index, "state", STARTUP_TIMEOUT)
            states.append(message[2])
        return states

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Back-pressure and progress counters for ``/healthz``.

        Never blocks on a dead worker: if a block lock cannot be taken
        promptly (a worker SIGKILLed mid-publish abandons it), the
        header is read without the lock — the counters are advisory and
        monotonic, and ``alive`` still reports the process state.
        """
        workers = []
        for index in range(self.n_workers):
            if self._locks[index].acquire(timeout=0.5):
                try:
                    header = self._blocks[index].header.copy()
                finally:
                    self._locks[index].release()
            else:
                header = self._blocks[index].header.copy()
            workers.append({
                "index": index,
                "alive": self._processes[index].is_alive(),
                "queue_depth": _queue_depth(self._inboxes[index]),
                "batches_routed": self._batches_routed[index],
                "batches_done": int(header[HEADER_BATCHES_DONE]),
                "batches_pending": (self._batches_routed[index]
                                    - int(header[HEADER_BATCHES_DONE])),
                "reports_done": int(header[HEADER_TOTAL_REPORTS]),
                "dropped_rows": int(header[HEADER_DROPPED_ROWS]),
            })
        return {
            "mechanism": self.mechanism,
            "ingest_mode": self.ingest_mode,
            "n_workers": self.n_workers,
            "reports_routed": self._reports_routed,
            "reports_total": self.reports_total,
            "queue_drops": self.queue_drops,
            "workers": workers,
            "merge": self.coordinator.status(),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, release queues and unlink shared memory."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "IngestTier":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
