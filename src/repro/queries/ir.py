"""Typed query IR: the query classes the planner compiles to range primitives.

The mechanisms' physical primitives are 1-D/2-D grid estimates and the
prefix-sum engine's batched range lookups, but those primitives answer far
more than axis-aligned range queries.  This module defines the *logical*
query surface as a small typed intermediate representation:

:class:`~repro.queries.RangeQuery`
    The paper's λ-D range query (fraction of users inside a box).
:class:`MarginalQuery`
    The full joint distribution of a set of attributes — every cell of
    the λ-D marginal table (the object CALM-style mechanisms release).
:class:`PointQuery`
    The frequency of one exact cell (``a1 = v1 ∧ a2 = v2 ∧ ...``), a
    degenerate range of width 1 per attribute.
:class:`PredicateCountQuery`
    A range predicate whose answer is reported as an absolute *count*
    of users instead of a fraction (``count = fraction × population``).
:class:`TopKQuery`
    The ``k`` most frequent cells of a group-by marginal, computed from
    the estimated marginal after a Norm-Sub cleanup.

Every query type lowers onto :class:`~repro.queries.RangeQuery`
primitives through :class:`~repro.queries.QueryPlanner`; the typed
result classes (:class:`ScalarResult`, :class:`DistributionResult`,
:class:`TopKResult`) carry the reassembled answers plus their wire
(JSON) form for the serving layer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from itertools import product

import numpy as np

from .range_query import Predicate, RangeQuery

#: Canonical short names of every query kind the planner understands.
QUERY_KINDS = ("range", "marginal", "point", "count", "topk")


def validate_query_kinds(query_kinds) -> tuple[str, ...]:
    """Check a query-kind tuple, naming any offending entry by position.

    Shared by every kind-list entry point (workload generation,
    ``ExperimentConfig.validate``) so the error text stays identical;
    returns the tuple normalised.
    """
    kinds = tuple(query_kinds)
    if not kinds:
        raise ValueError("query_kinds must name at least one kind")
    for position, kind in enumerate(kinds):
        if kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {kind!r} at position {position} of "
                f"query_kinds; known kinds: {', '.join(QUERY_KINDS)}")
    return kinds


class Query(abc.ABC):
    """Marker base of the typed query IR.

    :class:`~repro.queries.RangeQuery` predates the IR and is registered
    as a virtual subclass, so ``isinstance(query, Query)`` accepts every
    plannable query type.
    """


def _check_attributes(attributes: tuple[int, ...], owner: str) -> None:
    """Shared attribute-tuple validation for the IR constructors."""
    if not attributes:
        raise ValueError(f"{owner} needs at least one attribute")
    if any(attribute < 0 for attribute in attributes):
        raise ValueError(f"{owner} attribute indices must be non-negative")
    if len(set(attributes)) != len(attributes):
        raise ValueError(
            f"{owner} may list each attribute at most once, got {attributes}")


@dataclass(frozen=True)
class MarginalQuery(Query):
    """The full joint distribution of a set of attributes.

    The answer is the λ-D table of cell frequencies (``c`` entries per
    listed attribute), i.e. the object a marginal-release mechanism
    publishes.  Lowers to one degenerate (width-1) range query per cell
    in row-major order over the sorted attribute tuple.
    """

    attributes: tuple[int, ...]

    def __post_init__(self) -> None:
        attributes = tuple(int(a) for a in self.attributes)
        _check_attributes(attributes, "a marginal query")
        object.__setattr__(self, "attributes", tuple(sorted(attributes)))

    @property
    def dimension(self) -> int:
        """Number of attributes in the group-by (λ)."""
        return len(self.attributes)

    def n_cells(self, domain_size: int) -> int:
        """Number of cells in the marginal table (``c^λ``)."""
        return domain_size ** self.dimension

    def cells(self, domain_size: int):
        """Iterate the cell value tuples in row-major order."""
        return product(range(domain_size), repeat=self.dimension)

    def to_ranges(self, domain_size: int) -> list[RangeQuery]:
        """One degenerate range query per cell, in :meth:`cells` order."""
        return [RangeQuery(tuple(Predicate(attribute, value, value)
                                 for attribute, value
                                 in zip(self.attributes, cell)))
                for cell in self.cells(domain_size)]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(f"a{a + 1}" for a in self.attributes)
        return f"marginal({names})"


@dataclass(frozen=True)
class PointQuery(Query):
    """The frequency of one exact cell: ``a1 = v1 ∧ a2 = v2 ∧ ...``.

    Equivalent to a range query whose every interval has width 1; the
    planner lowers it to exactly that degenerate range.
    """

    assignment: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        assignment = tuple((int(a), int(v)) for a, v in self.assignment)
        _check_attributes(tuple(a for a, _ in assignment), "a point query")
        if any(value < 0 for _, value in assignment):
            raise ValueError("point query values must be non-negative")
        object.__setattr__(self, "assignment", tuple(sorted(assignment)))

    @classmethod
    def from_dict(cls, values: dict[int, int]) -> "PointQuery":
        """Build a point query from ``{attribute: value}``."""
        return cls(tuple(values.items()))

    @property
    def attributes(self) -> tuple[int, ...]:
        """Sorted tuple of the restricted attribute indices."""
        return tuple(a for a, _ in self.assignment)

    @property
    def dimension(self) -> int:
        """Number of pinned attributes (λ)."""
        return len(self.assignment)

    def as_range(self) -> RangeQuery:
        """The equivalent degenerate (width-1 everywhere) range query."""
        return RangeQuery(tuple(Predicate(attribute, value, value)
                                for attribute, value in self.assignment))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"a{a + 1}={v}" for a, v in self.assignment]
        return " ∧ ".join(parts)


@dataclass(frozen=True)
class PredicateCountQuery(Query):
    """A conjunctive range predicate answered as an absolute user *count*.

    ``population`` scales the underlying fractional range answer into a
    count; when None, the planner uses the answering mechanism's
    collected population (and ground truth uses the dataset's size).
    """

    predicates: tuple[Predicate, ...]
    population: int | None = None

    def __post_init__(self) -> None:
        # Reuse RangeQuery's canonicalisation + validation of predicates.
        canonical = RangeQuery(tuple(self.predicates))
        object.__setattr__(self, "predicates", canonical.predicates)
        if self.population is not None:
            population = int(self.population)
            if population < 1:
                raise ValueError(
                    f"population must be >= 1 when set, got {population}")
            object.__setattr__(self, "population", population)

    @classmethod
    def from_dict(cls, intervals: dict[int, tuple[int, int]],
                  population: int | None = None) -> "PredicateCountQuery":
        """Build from ``{attribute: (low, high)}`` plus an optional scale."""
        return cls(tuple(Predicate(a, lo, hi)
                         for a, (lo, hi) in intervals.items()),
                   population=population)

    @property
    def attributes(self) -> tuple[int, ...]:
        """Sorted tuple of restricted attribute indices."""
        return tuple(p.attribute for p in self.predicates)

    @property
    def dimension(self) -> int:
        """Number of restricted attributes (λ)."""
        return len(self.predicates)

    def as_range(self) -> RangeQuery:
        """The underlying fractional range query."""
        return RangeQuery(self.predicates)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"count({self.as_range()})"


@dataclass(frozen=True)
class TopKQuery(Query):
    """The ``k`` most frequent cells of a group-by marginal.

    Lowered as the full :class:`MarginalQuery` over ``attributes``; the
    planner's combiner runs Norm-Sub over the estimated table (negative
    noisy cells would scramble the ranking) and keeps the ``k`` largest
    cells, breaking ties deterministically by row-major cell order.
    """

    attributes: tuple[int, ...]
    k: int = 1

    def __post_init__(self) -> None:
        attributes = tuple(int(a) for a in self.attributes)
        _check_attributes(attributes, "a top-k query")
        object.__setattr__(self, "attributes", tuple(sorted(attributes)))
        k = int(self.k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        object.__setattr__(self, "k", k)

    @property
    def dimension(self) -> int:
        """Number of group-by attributes (λ)."""
        return len(self.attributes)

    def marginal(self) -> MarginalQuery:
        """The marginal query this top-k is computed from."""
        return MarginalQuery(self.attributes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(f"a{a + 1}" for a in self.attributes)
        return f"top{self.k}({names})"


Query.register(RangeQuery)


def query_kind(query) -> str:
    """The canonical kind name of one IR query (see :data:`QUERY_KINDS`)."""
    if isinstance(query, RangeQuery):
        return "range"
    if isinstance(query, MarginalQuery):
        return "marginal"
    if isinstance(query, PointQuery):
        return "point"
    if isinstance(query, PredicateCountQuery):
        return "count"
    if isinstance(query, TopKQuery):
        return "topk"
    raise TypeError(f"not an IR query: {type(query).__name__} "
                    f"(known kinds: {', '.join(QUERY_KINDS)})")


# ----------------------------------------------------------------------
# Typed results
# ----------------------------------------------------------------------
class QueryResult(abc.ABC):
    """Base of the typed answers :meth:`QueryPlan.assemble` produces."""

    query: Query

    @property
    def kind(self) -> str:
        """Kind name of the originating query."""
        return query_kind(self.query)

    @abc.abstractmethod
    def to_wire(self) -> dict:
        """JSON-serialisable form served by ``POST /query``."""


@dataclass
class ScalarResult(QueryResult):
    """A single-number answer (range fraction, point frequency or count).

    ``population`` is set for count queries: it records the scale the
    fractional estimate was multiplied by, so error metrics can
    renormalise counts back onto the frequency scale.
    """

    query: Query
    value: float
    population: int | None = None

    def to_wire(self) -> dict:
        """``{"type", "value"}`` plus ``population`` for counts."""
        document = {"type": self.kind, "value": float(self.value)}
        if self.population is not None:
            document["population"] = int(self.population)
        return document


@dataclass
class DistributionResult(QueryResult):
    """A full marginal table: one frequency per cell of the group-by."""

    query: MarginalQuery
    values: np.ndarray

    def to_wire(self) -> dict:
        """``{"type", "attributes", "values"}`` with the nested table."""
        return {"type": self.kind,
                "attributes": list(self.query.attributes),
                "values": self.values.tolist()}


@dataclass
class TopKResult(QueryResult):
    """The selected top-k cells with their (Norm-Sub cleaned) frequencies.

    ``distribution`` carries the full underlying table when the producer
    has it (ground truth always does); mechanism-side results leave it
    None so the response stays k-sized.
    """

    query: TopKQuery
    cells: tuple[tuple[int, ...], ...]
    values: np.ndarray
    distribution: np.ndarray | None = field(default=None, repr=False)

    def to_wire(self) -> dict:
        """``{"type", "attributes", "k", "items"}``; items are k-sized."""
        return {"type": self.kind,
                "attributes": list(self.query.attributes),
                "k": int(self.query.k),
                "items": [{"cell": list(cell), "value": float(value)}
                          for cell, value in zip(self.cells, self.values)]}
