"""Granularity guideline (Section 4.6) for TDG and HDG.

The guideline balances two squared errors — noise/sampling error (which
grows with finer grids) and non-uniformity error (which shrinks with finer
grids) — and yields closed forms for the 1-D granularity ``g1`` and the
2-D granularity ``g2``:

* ``g1 = cbrt(n1 * (e^eps - 1)^2 * alpha1^2 / (2 * m1 * e^eps))``
* ``g2 = sqrt(sqrt(2) * alpha2 * (e^eps - 1) * sqrt(n2 / (m2 * e^eps)))``

where ``n_i`` / ``m_i`` are the number of users / user groups dedicated to
i-D grids and ``alpha1 = 0.7``, ``alpha2 = 0.03`` are the recommended
dataset-independent constants.  The derived values are snapped to the
nearest *divisor* of the domain size ``c`` (floored at 2, capped at
``c``) so the grids always tile the domain exactly; for the paper's
power-of-two domains the divisors are the powers of two and the choice
coincides with the paper's rounding, but arbitrary domain sizes (100,
96, ...) now work instead of failing the grids' divisibility check.
``g1`` is additionally restricted to multiples of ``g2`` so Phase 2's
consistency buckets align.  Table 2 of the paper tabulates the resulting
choices; the test suite checks this module against that table.

Degenerate populations are handled rather than crashing: with fewer than
two users (or a user split that starves one grid family) the affected
granularities fall back to their minimum instead of evaluating the
guideline formulas on an empty group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Recommended constants from the paper (Section 4.6).
DEFAULT_ALPHA1 = 0.7
DEFAULT_ALPHA2 = 0.03


def nearest_power_of_two(value: float, minimum: int = 2,
                         maximum: int | None = None) -> int:
    """Round a positive value to the closest power of two (absolute distance).

    Ties go to the smaller power.  The result is clamped to
    ``[minimum, maximum]`` (both expected to be powers of two themselves).
    """
    if value <= 0:
        return minimum
    lower_exp = max(0, math.floor(math.log2(value)))
    lower = 2 ** lower_exp
    upper = lower * 2
    chosen = lower if (value - lower) <= (upper - value) else upper
    chosen = max(chosen, minimum)
    if maximum is not None:
        chosen = min(chosen, maximum)
    return chosen


def nearest_divisor(value: float, domain_size: int, minimum: int = 2,
                    multiple_of: int = 1) -> int:
    """Divisor of ``domain_size`` closest to ``value`` (absolute distance).

    Only divisors that are multiples of ``multiple_of`` (itself expected
    to divide ``domain_size``) are considered; candidates below
    ``minimum`` are excluded when larger ones exist.  Ties go to the
    smaller divisor, matching :func:`nearest_power_of_two` — for
    power-of-two domains the two functions agree, because the divisors
    of a power of two are exactly the smaller powers of two.
    """
    if domain_size < 1:
        raise ValueError("domain_size must be positive")
    if multiple_of < 1 or domain_size % multiple_of != 0:
        raise ValueError(
            f"multiple_of ({multiple_of}) must divide the domain size "
            f"({domain_size})")
    candidates = [d * multiple_of for d in range(1, domain_size // multiple_of + 1)
                  if domain_size % (d * multiple_of) == 0]
    preferred = [d for d in candidates if d >= minimum]
    if preferred:
        candidates = preferred
    return min(candidates, key=lambda d: (abs(d - value), d))


def minimum_granularity(domain_size: int, minimum: int = 2) -> int:
    """Smallest admissible granularity: the least divisor of ``c`` >= 2."""
    return nearest_divisor(0.0, domain_size, minimum=minimum)


def raw_g1(epsilon: float, n1: float, m1: float,
           alpha1: float = DEFAULT_ALPHA1) -> float:
    """Un-rounded guideline value for the 1-D granularity."""
    if n1 <= 0 or m1 <= 0:
        raise ValueError("n1 and m1 must be positive")
    e_eps = math.exp(epsilon)
    return (n1 * (e_eps - 1.0) ** 2 * alpha1 ** 2 / (2.0 * m1 * e_eps)) ** (1.0 / 3.0)


def raw_g2(epsilon: float, n2: float, m2: float,
           alpha2: float = DEFAULT_ALPHA2) -> float:
    """Un-rounded guideline value for the 2-D granularity."""
    if n2 <= 0 or m2 <= 0:
        raise ValueError("n2 and m2 must be positive")
    e_eps = math.exp(epsilon)
    inner = math.sqrt(n2 / (m2 * e_eps))
    return math.sqrt(2.0 * alpha2 * (e_eps - 1.0) * inner)


@dataclass(frozen=True)
class GranularityChoice:
    """Chosen granularities plus the user-split they were derived from."""

    g1: int
    g2: int
    n1: int
    n2: int
    m1: int
    m2: int


def default_user_split(n_users: int, n_attributes: int) -> tuple[int, int, int, int]:
    """Equal-population split between 1-D and 2-D grids for HDG.

    Returns ``(n1, n2, m1, m2)`` where ``m1 = d``, ``m2 = C(d,2)`` and the
    user counts are proportional to the group counts, so every group has
    the same population (the paper's default, σ0 = d / (d + C(d,2))).

    Both sides are clamped to at least one user whenever the population
    allows it (``n_users >= 2``); tiny populations that cannot feed both
    grid families yield a zero count on one side, which the guideline
    resolves by falling back to minimum granularities there.
    """
    if n_attributes < 2:
        raise ValueError("HDG needs at least 2 attributes")
    if n_users < 0:
        raise ValueError("n_users must be non-negative")
    m1 = n_attributes
    m2 = n_attributes * (n_attributes - 1) // 2
    n1 = int(round(n_users * m1 / (m1 + m2)))
    if n_users >= 2:
        n1 = min(max(n1, 1), n_users - 1)
    else:
        n1 = min(max(n1, 0), n_users)
    n2 = n_users - n1
    return n1, n2, m1, m2


def choose_granularities_hdg(epsilon: float, n_users: int, n_attributes: int,
                             domain_size: int,
                             alpha1: float = DEFAULT_ALPHA1,
                             alpha2: float = DEFAULT_ALPHA2,
                             sigma: float | None = None) -> GranularityChoice:
    """Guideline granularities for HDG.

    ``sigma`` optionally overrides the fraction of users assigned to the
    1-D grids (Figure 15 sweeps it); by default the equal-population split
    is used.
    """
    if sigma is None:
        n1, n2, m1, m2 = default_user_split(n_users, n_attributes)
    else:
        if not 0.0 < sigma < 1.0:
            raise ValueError(f"sigma must be in (0, 1), got {sigma}")
        m1 = n_attributes
        m2 = n_attributes * (n_attributes - 1) // 2
        n1 = int(round(n_users * sigma))
        if n_users >= 2:
            n1 = min(max(n1, 1), n_users - 1)
        else:
            n1 = min(max(n1, 0), n_users)
        n2 = n_users - n1
    # An empty group (possible only for n_users < 2) cannot evaluate the
    # guideline formula; it gets the minimum granularity instead.
    if n2 >= 1:
        g2 = nearest_divisor(raw_g2(epsilon, n2, m2, alpha2), domain_size,
                             minimum=2)
    else:
        g2 = minimum_granularity(domain_size)
    # The consistency step groups 1-D cells into g2 buckets, so g1 must be
    # a multiple of g2 (and still divide the domain).
    if n1 >= 1:
        g1 = nearest_divisor(raw_g1(epsilon, n1, m1, alpha1), domain_size,
                             minimum=2, multiple_of=g2)
    else:
        g1 = g2
    return GranularityChoice(g1=g1, g2=g2, n1=n1, n2=n2, m1=m1, m2=m2)


def choose_granularity_tdg(epsilon: float, n_users: int, n_attributes: int,
                           domain_size: int,
                           alpha2: float = DEFAULT_ALPHA2) -> GranularityChoice:
    """Guideline granularity for TDG (2-D grids only, all users)."""
    if n_attributes < 2:
        raise ValueError("TDG needs at least 2 attributes")
    m2 = n_attributes * (n_attributes - 1) // 2
    if n_users >= 1:
        g2 = nearest_divisor(raw_g2(epsilon, n_users, m2, alpha2), domain_size,
                             minimum=2)
    else:
        g2 = minimum_granularity(domain_size)
    return GranularityChoice(g1=0, g2=g2, n1=0, n2=n_users, m1=0, m2=m2)


def recommended_granularity_table(epsilon_values: list[float],
                                  settings: list[tuple[int, float]],
                                  alpha1: float = DEFAULT_ALPHA1,
                                  alpha2: float = DEFAULT_ALPHA2,
                                  domain_size: int = 64) -> dict[tuple[int, float, float], tuple[int, int]]:
    """Regenerate Table 2: recommended (g1, g2) for each (d, lg n, ε).

    ``settings`` is a list of ``(d, lg10_n)`` rows; the returned dict maps
    ``(d, lg10_n, epsilon)`` to the chosen ``(g1, g2)``.
    """
    table = {}
    for d, lg_n in settings:
        n_users = int(round(10 ** lg_n))
        for epsilon in epsilon_values:
            choice = choose_granularities_hdg(epsilon, n_users, d, domain_size,
                                              alpha1=alpha1, alpha2=alpha2)
            table[(d, lg_n, epsilon)] = (choice.g1, choice.g2)
    return table
