"""Incremental, shard-mergeable aggregation pipeline.

The paper's grid mechanisms are aggregation-based — every cell estimate
is a debiased sum over user reports — so collection can be split across
shards and merged exactly.  This package provides the serving-side
plumbing on top of the mechanisms' ``partial_fit`` / ``merge`` /
``finalize`` protocol:

ShardAggregator
    Stream user-report batches into one shard's additive state; merge
    aggregators across shards; serialize/restore the state as JSON.
parallel_fit / shard_dataset
    Fit a mechanism over K disjoint user shards concurrently with
    :mod:`concurrent.futures` and merge the results deterministically.
"""

from .aggregator import (SHARDABLE_MECHANISMS, ShardAggregator,
                         merge_aggregators, write_state)
from .parallel import (SHARD_SEED_STRIDE, ParallelFitReport, parallel_fit,
                       shard_dataset, shard_seed)

__all__ = [
    "ParallelFitReport",
    "SHARDABLE_MECHANISMS",
    "SHARD_SEED_STRIDE",
    "ShardAggregator",
    "merge_aggregators",
    "parallel_fit",
    "shard_dataset",
    "shard_seed",
    "write_state",
]
