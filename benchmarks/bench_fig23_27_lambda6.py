"""Figures 23-27: λ = 6 variants of the ε sweep on the synthetic datasets.

Paper shape: the relative ordering of the mechanisms observed at λ = 2, 4
carries over to λ = 6.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figures_23_27(benchmark):
    scale = current_scale()

    def run():
        return figures.figure_1_vary_epsilon(
            datasets=("normal",) if scale.n_users <= 100_000 else ("normal", "laplace"),
            epsilons=scale.epsilons[:3], query_dimensions=(6,),
            n_users=scale.n_users, n_attributes=scale.n_attributes,
            domain_size=scale.domain_size, volume=0.5,
            n_queries=max(10, scale.n_queries // 2),
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig23_27_lambda6",
           figures.format_figure_results(results, "Figures 23-27: lambda = 6"))
    for _, sweep in results.items():
        series = sweep.series()
        assert series["HDG"][-1] < series["HIO"][-1]
