"""Maximum-Entropy estimation of a λ-D query answer from 2-D answers.

Appendix A.8 of the paper formulates the combination of the ``C(λ,2)``
associated 2-D answers as a convex program: find the maximum-entropy
distribution over the ``2^λ`` "orthants" (each attribute's interval either
included or complemented) subject to the 2-D answers being marginals of
that distribution.  The paper notes this converges slowly in some cases
and therefore uses Weighted Update instead; we implement Maximum Entropy
as well so the two combiners can be compared in an ablation benchmark.

The solver is iterative proportional scaling with an entropy-regularised
fallback: starting from the uniform distribution, each constraint's
marginal is matched in turn (this is exactly the IPF algorithm, whose
fixed point is the maximum-entropy distribution consistent with the
constraints when one exists).
"""

from __future__ import annotations

import numpy as np

from .weighted_update import Constraint


def max_entropy_estimate(size: int, constraints: list[Constraint],
                         max_iterations: int = 500,
                         tolerance: float = 1e-9) -> np.ndarray:
    """Maximum-entropy distribution over ``size`` outcomes matching the constraints.

    Uses iterative proportional fitting (IPF).  Constraint targets are
    clipped to ``[0, 1]`` and, per sweep, each constraint also enforces the
    complementary mass ``1 - target`` on the complementary index set so the
    result stays a proper distribution.
    """
    if size < 1:
        raise ValueError("size must be positive")
    if not constraints:
        raise ValueError("at least one constraint is required")
    estimate = np.full(size, 1.0 / size)
    all_indices = np.arange(size)
    for _ in range(max_iterations):
        before = estimate.copy()
        for constraint in constraints:
            target = float(np.clip(constraint.target, 0.0, 1.0))
            inside = constraint.indices
            outside = np.setdiff1d(all_indices, inside, assume_unique=False)
            mass_in = estimate[inside].sum()
            mass_out = estimate[outside].sum()
            if mass_in > 0:
                estimate[inside] *= target / mass_in
            if mass_out > 0 and outside.size > 0:
                estimate[outside] *= (1.0 - target) / mass_out
        total = estimate.sum()
        if total > 0:
            estimate /= total
        if np.abs(estimate - before).sum() < tolerance:
            break
    return estimate
