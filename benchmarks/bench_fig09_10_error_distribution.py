"""Figures 9-10: per-query standard-error distributions of TDG and HDG.

Paper shape: HDG's error distribution is concentrated near zero (errors an
order of magnitude smaller than TDG's on most datasets).
"""

import numpy as np

from _scale import current_scale, report

from repro.experiments import appendix


def bench_figures_9_10(benchmark):
    scale = current_scale()

    def run():
        return appendix.figure_9_10_error_distribution(
            datasets=scale.datasets[:2], query_dimensions=(2, 4),
            n_users=scale.n_users, n_attributes=scale.n_attributes,
            domain_size=scale.domain_size, epsilon=1.0, volume=0.5,
            n_queries=scale.n_queries, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Figures 9-10: standard error distributions =="]
    for (dataset, dimension), panel in results.items():
        for method, payload in panel.items():
            errors = payload["errors"]
            lines.append(f"{dataset} λ={dimension} {method}: "
                         f"mean={errors.mean():.5f} median={np.median(errors):.5f} "
                         f"p90={np.quantile(errors, 0.9):.5f} max={errors.max():.5f}")
    report("fig09_10_error_distribution", "\n".join(lines))
    for (dataset, dimension), panel in results.items():
        if dimension == 2:
            assert panel["HDG"]["errors"].mean() <= panel["TDG"]["errors"].mean()
