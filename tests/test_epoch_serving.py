"""Tests for the epoch-published lock-free read path (repro.serving.epoch).

The load-bearing property is the read-consistency contract: a query
observes exactly one fully-published :class:`EstimatorEpoch` — never a
mix of two — and its answers are **bitwise identical** to answering
through the estimator directly, for every mechanism, with or without
the answer cache in the way.  On top of that the suite covers the
``(epoch_id, workload)`` answer LRU (counters, eviction, isolation
across tenants), the single-query fast path, cache-capacity plumbing
end to end, the ``Refinalize-Epoch`` response header, and epoch
persistence through the snapshot round trip.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.datasets import Dataset, make_dataset
from repro.estimation.weighted_update import (Constraint,
                                              _weighted_update_single,
                                              weighted_update,
                                              weighted_update_batch)
from repro.queries import MarginalQuery, WorkloadGenerator
from repro.serving import (SNAPSHOT_MECHANISMS, AnswerCache, QueryService,
                           ServiceError, TenantManager, build_server)
from repro.serving.epoch import _CachedAnswer
from repro.storage import DirectoryBackend

DOMAIN = 16


@pytest.fixture(scope="module")
def epoch_dataset() -> Dataset:
    return make_dataset("normal", 1_500, 3, DOMAIN,
                        rng=np.random.default_rng(21))


@pytest.fixture(scope="module")
def range_workload() -> list:
    generator = WorkloadGenerator(3, DOMAIN, rng=np.random.default_rng(9))
    return (generator.random_workload(5, 1, 0.5)
            + generator.random_workload(6, 2, 0.5)
            + generator.random_workload(4, 3, 0.5))


def _streaming_service(**kwargs) -> QueryService:
    service = QueryService("TDG", 1.0, seed=3, domain_size=8, **kwargs)
    rng = np.random.default_rng(17)
    service.ingest(rng.integers(0, 8, size=(600, 2)))
    service.refinalize()
    return service


def _small_workload() -> list:
    generator = WorkloadGenerator(2, 8, rng=np.random.default_rng(4))
    return generator.random_workload(6, 2, 0.5)


# ----------------------------------------------------------------------
# Bitwise identity: epoch path vs the estimator, every mechanism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SNAPSHOT_MECHANISMS))
def test_epoch_answers_bitwise_identical_to_direct(name, epoch_dataset,
                                                   range_workload):
    """Twin same-seeded instances: one served through the epoch read
    path (cache + fast paths live), one answered directly.  Both sides
    run the identical call sequence, so even the noise-drawing
    mechanisms (HIO/LHIO) must match bit for bit — including the
    second, cache-hitting pass."""
    served = SNAPSHOT_MECHANISMS[name](1.0, seed=7).fit(epoch_dataset)
    direct = SNAPSHOT_MECHANISMS[name](1.0, seed=7).fit(epoch_dataset)
    service = QueryService(served)
    for _ in range(2):  # second pass answers from the cache
        assert np.array_equal(service.query(range_workload),
                              direct.answer_workload(range_workload))
    # Single-query fast path (per-epoch scratch plans), twice: the
    # first pass fills the plan map, the second uses it.
    for _ in range(2):
        for query in range_workload:
            assert np.array_equal(service.query([query]),
                                  direct.answer_workload([query]))


def test_epoch_typed_and_wire_match_direct(epoch_dataset):
    served = SNAPSHOT_MECHANISMS["HDG"](1.0, seed=5).fit(epoch_dataset)
    direct = SNAPSHOT_MECHANISMS["HDG"](1.0, seed=5).fit(epoch_dataset)
    service = QueryService(served)
    generator = WorkloadGenerator(3, DOMAIN, rng=np.random.default_rng(2))
    workload = generator.random_workload(3, 2, 0.5) + [MarginalQuery((0, 1))]
    for _ in range(2):
        got = [result.to_wire() for result in service.query_typed(workload)]
        want = [result.to_wire() for result in direct.answer_typed(workload)]
        assert got == want
    document = service.query_wire(
        [{"kind": "range", "predicates": [
            {"attribute": 0, "low": 1, "high": 9}]}])
    again = service.query_wire(
        [{"kind": "range", "predicates": [
            {"attribute": 0, "low": 1, "high": 9}]}])
    assert document == again
    assert json.dumps(document)  # memoized document stays serializable


def test_query_before_first_epoch_raises():
    service = QueryService("TDG", 1.0, seed=0, domain_size=8)
    with pytest.raises(ServiceError, match="not ready"):
        service.query(_small_workload())


# ----------------------------------------------------------------------
# Weighted-Update single-problem specialization
# ----------------------------------------------------------------------
def test_weighted_update_single_bitwise_matches_batch():
    """The 1-D sweep must be bitwise identical to the sequential
    reference engine and to the n==1 batch dispatch.  (A 2-row stack
    is *not* a valid cross-check: ``sub[:, idx]`` gathers F-ordered
    for n >= 2, so its axis-1 sums round differently in the last ulp
    than any n==1 run — a pre-existing property of the generic path.
    Rows of one stacked run must still agree with each other.)"""
    rng = np.random.default_rng(13)
    size = 64
    index_sets = [rng.choice(size, size=rng.integers(2, 12), replace=False)
                  for _ in range(20)]
    for trial in range(10):
        targets = rng.random(len(index_sets))
        if trial % 3 == 0:
            targets[rng.integers(0, len(index_sets))] = 0.0
        single = _weighted_update_single(size, index_sets, targets,
                                         1e-7, 100)
        dispatched = weighted_update_batch(size, index_sets, targets[None])
        sequential = weighted_update(
            size, [Constraint(idx, target)
                   for idx, target in zip(index_sets, targets)]).estimate
        assert np.array_equal(single, dispatched[0])
        assert np.array_equal(single, sequential)
        stacked = weighted_update_batch(size, index_sets,
                                        np.vstack([targets, targets]))
        assert np.array_equal(stacked[0], stacked[1])


# ----------------------------------------------------------------------
# Answer cache
# ----------------------------------------------------------------------
def test_answer_cache_counters_and_eviction():
    cache = AnswerCache(capacity=2)
    assert cache.get(("k1",)) is None
    cache.put(("k1",), _CachedAnswer())
    cache.put(("k2",), _CachedAnswer())
    assert cache.get(("k1",)) is not None  # k1 now most recent
    cache.put(("k3",), _CachedAnswer())    # evicts k2 (LRU)
    assert cache.get(("k2",)) is None
    assert cache.get(("k1",)) is not None
    stats = cache.stats()
    assert stats == {"size": 2, "capacity": 2, "hits": 2, "misses": 2,
                     "evictions": 1}
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 2  # counters keep accumulating


def test_answer_cache_capacity_zero_disables():
    service = _streaming_service(answer_cache_entries=0)
    workload = _small_workload()
    first = service.query(workload)
    second = service.query(workload)
    assert np.array_equal(first, second)
    stats = service.answer_cache_stats()
    assert stats["capacity"] == 0
    assert stats["size"] == 0
    assert stats["hits"] == 0


def test_answer_cache_hits_and_epoch_invalidation():
    service = _streaming_service()
    workload = _small_workload()
    before = service.query(workload)
    assert service.answer_cache_stats()["hits"] == 0
    assert np.array_equal(service.query(workload), before)
    assert service.answer_cache_stats()["hits"] == 1
    first_epoch = service.epoch_id
    rng = np.random.default_rng(23)
    service.ingest(rng.integers(0, 8, size=(400, 2)))
    service.refinalize()
    assert service.epoch_id == first_epoch + 1
    # New epoch -> new cache keys: the old entry can never be served.
    hits_before = service.answer_cache_stats()["hits"]
    after = service.query(workload)
    assert service.answer_cache_stats()["hits"] == hits_before
    assert not np.array_equal(after, before)  # more data, new estimate
    # Returned arrays are copies: mutating one must not poison the cache.
    after[0] = -1.0
    assert service.query(workload)[0] != -1.0


def test_cached_answers_survive_concurrent_mutation_of_results():
    service = _streaming_service()
    workload = _small_workload()
    reference = service.query(workload).copy()
    for _ in range(3):
        got = service.query(workload)
        assert np.array_equal(got, reference)
        got.fill(np.nan)


# ----------------------------------------------------------------------
# Cache capacity plumbing
# ----------------------------------------------------------------------
def test_cache_capacities_flow_into_status():
    service = _streaming_service(plan_cache_entries=32,
                                 answer_cache_entries=5)
    status = service.status()
    assert status["plan_cache"]["capacity"] == 32
    assert status["answer_cache"]["capacity"] == 5
    assert status["epoch"] == 1
    # The answer LRU honours its bound across distinct workloads.
    generator = WorkloadGenerator(2, 8, rng=np.random.default_rng(6))
    for index in range(8):
        service.query(generator.random_workload(2, 2, 0.5))
    stats = service.answer_cache_stats()
    assert stats["size"] <= 5
    assert stats["evictions"] >= 3


def test_invalid_cache_capacities_rejected():
    with pytest.raises(ValueError, match="plan_cache_entries"):
        QueryService("TDG", 1.0, plan_cache_entries=0)
    with pytest.raises(ValueError, match="answer_cache_entries"):
        QueryService("TDG", 1.0, answer_cache_entries=-1)


def test_tenant_cache_config_overrides(tmp_path):
    backend = DirectoryBackend(tmp_path / "store")
    try:
        manager = TenantManager(backend)
        manager.create_tenant("tuned", {
            "mechanism": "TDG", "epsilon": 1.0, "seed": 11,
            "domain_size": 8, "plan_cache_entries": 16,
            "answer_cache_entries": 4})
        manager.create_tenant("plain", {
            "mechanism": "TDG", "epsilon": 1.0, "seed": 11,
            "domain_size": 8})
        tuned = manager.service("tuned")
        assert tuned.plan_cache_entries == 16
        assert tuned.answer_cache_entries == 4
        assert manager.service("plain").plan_cache_entries is None
        rng = np.random.default_rng(3)
        manager.ingest("tuned", rng.integers(0, 8, size=(200, 2)).tolist())
        manager.refinalize("tuned")
        described = manager.describe_tenant("tuned")
        assert described["status"]["plan_cache"]["capacity"] == 16
        assert described["status"]["answer_cache"]["capacity"] == 4
        assert described["status"]["epoch"] == 1
    finally:
        backend.close()


def test_answer_cache_does_not_bleed_across_tenants(tmp_path):
    """Two tenants with identical configs but different data: the same
    workload must answer from each tenant's own estimator, not a
    shared cache entry."""
    backend = DirectoryBackend(tmp_path / "store")
    try:
        manager = TenantManager(backend)
        config = {"mechanism": "TDG", "epsilon": 1.0, "seed": 11,
                  "domain_size": 8}
        manager.create_tenant("a", dict(config))
        manager.create_tenant("b", dict(config))
        rng = np.random.default_rng(5)
        manager.ingest("a", rng.integers(0, 8, size=(300, 2)).tolist())
        manager.ingest("b", rng.integers(0, 4, size=(300, 2)).tolist())
        manager.refinalize("a")
        manager.refinalize("b")
        service_a = manager.service("a")
        service_b = manager.service("b")
        assert service_a._answer_cache is not service_b._answer_cache
        workload = _small_workload()
        a_first = service_a.query(workload)
        b_first = service_b.query(workload)  # both epoch 1, same keys
        assert not np.array_equal(a_first, b_first)
        assert np.array_equal(service_a.query(workload), a_first)
        assert np.array_equal(service_b.query(workload), b_first)
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Epoch persistence and the HTTP surface
# ----------------------------------------------------------------------
def test_snapshot_round_trip_preserves_epoch_and_cache_config():
    service = _streaming_service(plan_cache_entries=24,
                                 answer_cache_entries=7)
    rng = np.random.default_rng(29)
    service.ingest(rng.integers(0, 8, size=(200, 2)))
    service.refinalize()
    assert service.epoch_id == 2
    workload = _small_workload()
    reference = service.query(workload)
    restored = QueryService.from_state_dict(
        json.loads(json.dumps(service.state_dict())))
    assert restored.epoch_id == 2
    assert restored.plan_cache_entries == 24
    assert restored.answer_cache_entries == 7
    assert np.array_equal(restored.query(workload), reference)


def test_refinalize_epoch_header_increments():
    service = QueryService("TDG", 1.0, seed=3, domain_size=8)
    server = build_server(service, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        rng = np.random.default_rng(31)

        def post(path, payload):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}{path}",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                return (json.loads(response.read()),
                        response.headers.get("Refinalize-Epoch"))

        post("/ingest", {"rows": rng.integers(0, 8, size=(80, 2)).tolist()})
        status, header = post("/refinalize", {})
        assert status["epoch"] == 1 and header == "1"
        post("/ingest", {"rows": rng.integers(0, 8, size=(80, 2)).tolist()})
        status, header = post("/refinalize", {})
        assert status["epoch"] == 2 and header == "2"

        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30) as response:
            health = json.loads(response.read())
        assert health["epoch"] == 2
        assert health["answer_cache"]["capacity"] > 0
    finally:
        server.shutdown()
        server.server_close()


# ----------------------------------------------------------------------
# Concurrency: torn reads and epoch churn
# ----------------------------------------------------------------------
def test_concurrent_readers_see_identical_answers():
    """N threads against one published epoch must all observe the
    reference answers bitwise (pure mechanism: fully lock-free)."""
    service = _streaming_service()
    workload = _small_workload()
    reference = service.query(workload).copy()
    failures: list = []

    def reader():
        try:
            for _ in range(50):
                if not np.array_equal(service.query(workload), reference):
                    failures.append("answer mismatch")
                    return
        except Exception as error:  # pragma: no cover - failure path
            failures.append(repr(error))

    threads = [threading.Thread(target=reader) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures


def test_concurrent_readers_impure_mechanism(epoch_dataset, range_workload):
    """HIO answers draw lazy noise: the per-epoch answering lock must
    keep concurrent readers deterministic (repeat answering of a fixed
    epoch is memoized, so every read of one workload agrees)."""
    served = SNAPSHOT_MECHANISMS["HIO"](1.0, seed=7).fit(epoch_dataset)
    service = QueryService(served)
    assert not service.read_epoch().answering_is_pure
    reference = service.query(range_workload).copy()
    failures: list = []

    def reader():
        try:
            for _ in range(10):
                if not np.array_equal(service.query(range_workload),
                                      reference):
                    failures.append("answer mismatch")
                    return
        except Exception as error:  # pragma: no cover - failure path
            failures.append(repr(error))

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures


@pytest.mark.chaos
def test_no_torn_reads_under_epoch_churn():
    """Readers racing re-finalizes must each observe one consistent
    epoch: every recorded (epoch_id, answer) pair matches the
    reference answers of that exact epoch, and the epoch ids each
    reader observes never go backwards."""
    service = _streaming_service()
    workload = _small_workload()
    rng = np.random.default_rng(41)
    reference: dict = {}

    def snapshot_reference():
        epoch = service.read_epoch()
        reference[epoch.epoch_id] = epoch.answer_workload(workload)

    snapshot_reference()
    stop = threading.Event()
    records: list[list] = [[] for _ in range(4)]
    failures: list = []

    def reader(index: int):
        try:
            while not stop.is_set():
                epoch = service.read_epoch()
                answer = epoch.answer_workload(workload)
                records[index].append((epoch.epoch_id, answer))
        except Exception as error:  # pragma: no cover - failure path
            failures.append(repr(error))

    threads = [threading.Thread(target=reader, args=(index,))
               for index in range(len(records))]
    for thread in threads:
        thread.start()
    try:
        # Main thread is the only publisher, so the epoch is stable
        # between its own refinalize calls and the reference snapshot
        # taken right after each publish is that epoch's ground truth.
        for _ in range(6):
            service.ingest(rng.integers(0, 8, size=(150, 2)))
            service.refinalize()
            snapshot_reference()
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert not failures
    assert len(reference) == 7
    for observed in records:
        assert observed, "reader made no progress"
        previous = 0
        for epoch_id, answer in observed:
            assert epoch_id >= previous, "epoch went backwards"
            previous = epoch_id
            assert epoch_id in reference
            assert np.array_equal(answer, reference[epoch_id])
    # Churn actually happened: at least one reader crossed epochs.
    crossed = {epoch_id for observed in records
               for epoch_id, _ in observed}
    assert len(crossed) >= 2
