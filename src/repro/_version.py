"""Single source of the library version.

``__version__`` is the version of the code in this tree.  ``setup.py``
reads this same constant to stamp the distribution metadata, so a
properly installed copy's ``importlib.metadata`` version always equals
it — which makes the running tree's constant the truthful answer even
when a source checkout on ``PYTHONPATH`` shadows an older installed
distribution.  The CLI's ``--version`` flag and the serving
``/healthz`` document both report :func:`package_version`.
"""

from __future__ import annotations

__version__ = "1.3.0"


def package_version() -> str:
    """The version of the running code (equals installed metadata)."""
    return __version__
