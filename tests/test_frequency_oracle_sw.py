"""Tests for the Square Wave mechanism and its EM reconstruction."""

import math

import numpy as np
import pytest

from repro.frequency_oracles import SquareWave, squarewave_parameters


def test_parameters_satisfy_ldp_ratio():
    for epsilon in (0.5, 1.0, 2.0):
        delta, p, p_prime = squarewave_parameters(epsilon)
        assert delta > 0
        assert p / p_prime == pytest.approx(math.exp(epsilon))


def test_parameters_total_probability_is_one():
    for epsilon in (0.5, 1.0, 2.0):
        delta, p, p_prime = squarewave_parameters(epsilon)
        # Window of length 2*delta reported w.p. density p, the remaining
        # length (1 + 2*delta) - 2*delta = 1 w.p. density p'.
        total = 2 * delta * p + 1.0 * p_prime
        assert total == pytest.approx(1.0)


def test_transition_matrix_columns_are_distributions():
    oracle = SquareWave(1.0, 16, rng=np.random.default_rng(0))
    matrix = oracle._transition
    assert matrix.shape == (16, 16)
    np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-9)
    assert (matrix >= 0).all()


def test_perturbed_reports_stay_in_padded_domain(rng):
    oracle = SquareWave(1.0, 32, rng=rng)
    reports = oracle.perturb(rng.integers(0, 32, size=5_000))
    assert reports.min() >= -oracle.delta - 1e-9
    assert reports.max() <= 1.0 + oracle.delta + 1e-9


def test_reports_concentrate_near_true_value(rng):
    oracle = SquareWave(3.0, 32, rng=rng)
    values = np.full(20_000, 16)  # centre of the domain
    reports = oracle.perturb(values)
    position = (16 + 0.5) / 32
    near = np.abs(reports - position) <= oracle.delta + 1e-9
    # With high epsilon most reports should fall inside the window.
    assert near.mean() > 0.5


def test_reconstruction_recovers_distribution_shape(rng):
    c = 16
    oracle = SquareWave(2.0, c, rng=rng)
    # Bimodal distribution.
    probabilities = np.zeros(c)
    probabilities[3] = 0.5
    probabilities[12] = 0.5
    values = rng.choice(c, size=60_000, p=probabilities)
    estimate = oracle.estimate_frequencies(values)
    assert estimate.shape == (c,)
    assert estimate.sum() == pytest.approx(1.0, abs=1e-6)
    # The two modes should carry most of the reconstructed mass.
    assert estimate[2:5].sum() + estimate[11:14].sum() > 0.6


def test_estimate_is_a_distribution(rng):
    oracle = SquareWave(1.0, 16, rng=rng)
    estimate = oracle.estimate_frequencies(rng.integers(0, 16, size=10_000))
    assert (estimate >= 0).all()
    assert estimate.sum() == pytest.approx(1.0, abs=1e-6)


def test_range_answers_improve_with_epsilon(rng):
    c = 32
    probabilities = np.exp(-0.2 * np.arange(c))
    probabilities /= probabilities.sum()
    values = rng.choice(c, size=50_000, p=probabilities)
    true_range = probabilities[:8].sum()
    errors = []
    for epsilon in (0.3, 3.0):
        estimates = []
        for seed in range(3):
            oracle = SquareWave(epsilon, c, rng=np.random.default_rng(seed))
            estimates.append(oracle.estimate_frequencies(values)[:8].sum())
        errors.append(abs(np.mean(estimates) - true_range))
    assert errors[1] < errors[0] + 0.02


def test_reconstruct_rejects_bad_input():
    oracle = SquareWave(1.0, 8)
    with pytest.raises(ValueError):
        oracle.reconstruct(np.zeros(5))
    with pytest.raises(ValueError):
        oracle.reconstruct(np.zeros(8))
