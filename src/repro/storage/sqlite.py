"""SQLite (WAL mode) storage backend.

One single-file database holds every tenant's snapshots and
write-ahead ingest log, with schema-per-concern tables modeled on the
Paper-Scanner schema (SNIPPETS.md snippet 3): metadata rows are small
and queried for listings; the large snapshot documents live in a
separate blob table keyed by the metadata row, so ``repro snapshot
list`` and ``GET /snapshot`` never read (or stat) a blob.

Pragmas applied at connection time:

==================  ========  =============================================
Pragma              Value     Purpose
==================  ========  =============================================
``journal_mode``    WAL       readers never block the single writer
``foreign_keys``    ON        tenant deletion cascades to snapshots/log
``synchronous``     NORMAL    fsync at WAL checkpoints — safe with WAL,
                              far cheaper than FULL per-commit fsyncs
``busy_timeout``    30000 ms  concurrent openers wait instead of failing
==================  ========  =============================================

Tables (all timestamps UTC ISO-8601 ``TEXT``)::

    tenants (1) ──< snapshots (1) ── (1) snapshot_blobs
        │              └── (1) snapshot_listing   (materialized)
        └────< ingest_log

``snapshot_listing`` is a *materialized* listing table kept in sync by
``AFTER INSERT``/``AFTER DELETE`` triggers on ``snapshots`` — the
listing query is a bare single-table scan with the tenant name already
denormalized in.  ``wal_floor`` keeps ingest-log sequence numbers
monotonic per tenant across prunes (a recovered service must never
reuse a sequence number a snapshot already claims to have captured).

The connection is process-wide (``check_same_thread=False``) with one
lock serializing statements — the HTTP worker pool's calls interleave
safely and SQLite's own WAL handles concurrent *processes*.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path

from .base import (IngestLogEntry, SnapshotRecord, StorageBackend,
                   TenantExistsError, TenantRecord, UnknownTenantError,
                   snapshot_meta_from_document, utc_now,
                   validate_tenant_name)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tenants (
    tenant_id   INTEGER PRIMARY KEY,
    name        TEXT NOT NULL UNIQUE,
    config      TEXT NOT NULL,
    created_at  TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS snapshots (
    snapshot_id      INTEGER PRIMARY KEY,
    tenant_id        INTEGER NOT NULL
                     REFERENCES tenants(tenant_id) ON DELETE CASCADE,
    version          INTEGER NOT NULL,
    created_at       TEXT NOT NULL,
    size_bytes       INTEGER NOT NULL,
    mechanism        TEXT,
    epsilon          REAL,
    reports_ingested INTEGER,
    wal_seq          INTEGER NOT NULL DEFAULT 0,
    UNIQUE (tenant_id, version)
);

CREATE TABLE IF NOT EXISTS snapshot_blobs (
    snapshot_id  INTEGER PRIMARY KEY
                 REFERENCES snapshots(snapshot_id) ON DELETE CASCADE,
    document     BLOB NOT NULL
);

CREATE TABLE IF NOT EXISTS ingest_log (
    entry_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant_id    INTEGER NOT NULL
                 REFERENCES tenants(tenant_id) ON DELETE CASCADE,
    seq          INTEGER NOT NULL,
    rows         TEXT NOT NULL,
    domain_size  INTEGER,
    created_at   TEXT NOT NULL,
    UNIQUE (tenant_id, seq)
);

CREATE TABLE IF NOT EXISTS wal_floor (
    tenant_id  INTEGER PRIMARY KEY
               REFERENCES tenants(tenant_id) ON DELETE CASCADE,
    last_seq   INTEGER NOT NULL DEFAULT 0
);

CREATE TABLE IF NOT EXISTS snapshot_listing (
    snapshot_id      INTEGER PRIMARY KEY,
    tenant           TEXT NOT NULL,
    version          INTEGER NOT NULL,
    created_at       TEXT NOT NULL,
    size_bytes       INTEGER NOT NULL,
    mechanism        TEXT,
    epsilon          REAL,
    reports_ingested INTEGER,
    wal_seq          INTEGER NOT NULL DEFAULT 0
);

CREATE INDEX IF NOT EXISTS idx_ingest_log_tenant_seq
    ON ingest_log(tenant_id, seq);
CREATE INDEX IF NOT EXISTS idx_snapshot_listing_tenant
    ON snapshot_listing(tenant, version);

CREATE TRIGGER IF NOT EXISTS trg_snapshot_listing_insert
AFTER INSERT ON snapshots
BEGIN
    INSERT INTO snapshot_listing (snapshot_id, tenant, version, created_at,
                                  size_bytes, mechanism, epsilon,
                                  reports_ingested, wal_seq)
    SELECT NEW.snapshot_id, tenants.name, NEW.version, NEW.created_at,
           NEW.size_bytes, NEW.mechanism, NEW.epsilon,
           NEW.reports_ingested, NEW.wal_seq
    FROM tenants WHERE tenants.tenant_id = NEW.tenant_id;
END;

CREATE TRIGGER IF NOT EXISTS trg_snapshot_listing_delete
AFTER DELETE ON snapshots
BEGIN
    DELETE FROM snapshot_listing WHERE snapshot_id = OLD.snapshot_id;
END;
"""


class SQLiteBackend(StorageBackend):
    """All storage concerns in one WAL-mode SQLite database file."""

    name = "sqlite"

    #: Default lock-wait budget; override per store with
    #: ``busy_timeout_ms`` / ``open_backend(..., busy_timeout_ms=...)``
    #: / ``repro serve --busy-timeout`` (docs/storage.md discusses the
    #: interaction with the serving tier's retry policy).
    DEFAULT_BUSY_TIMEOUT_MS = 30_000

    def __init__(self, path: str | Path,
                 busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS):
        if busy_timeout_ms < 0:
            raise ValueError("busy_timeout_ms must be >= 0")
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(str(self.path),
                                           check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            connection = self._connection
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA foreign_keys=ON")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            connection.executescript(_SCHEMA)
            connection.commit()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tenant_id(self, name: str) -> int:
        row = self._connection.execute(
            "SELECT tenant_id FROM tenants WHERE name = ?", (name,)).fetchone()
        if row is None:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        return int(row["tenant_id"])

    @staticmethod
    def _snapshot_record(row: sqlite3.Row, tenant: str) -> SnapshotRecord:
        return SnapshotRecord(
            tenant=tenant, version=int(row["version"]),
            created_at=row["created_at"],
            size_bytes=int(row["size_bytes"]),
            mechanism=row["mechanism"],
            epsilon=row["epsilon"],
            reports_ingested=row["reports_ingested"],
            wal_seq=int(row["wal_seq"]))

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def create_tenant(self, name: str, config: dict) -> TenantRecord:
        validate_tenant_name(name)
        created = utc_now()
        with self._lock:
            try:
                cursor = self._connection.execute(
                    "INSERT INTO tenants (name, config, created_at) "
                    "VALUES (?, ?, ?)", (name, json.dumps(config), created))
            except sqlite3.IntegrityError:
                raise TenantExistsError(
                    f"tenant {name!r} already exists") from None
            self._connection.execute(
                "INSERT INTO wal_floor (tenant_id, last_seq) VALUES (?, 0)",
                (cursor.lastrowid,))
            self._connection.commit()
        return TenantRecord(name=name, config=dict(config),
                            created_at=created)

    def get_tenant(self, name: str) -> TenantRecord:
        with self._lock:
            row = self._connection.execute(
                "SELECT name, config, created_at FROM tenants "
                "WHERE name = ?", (name,)).fetchone()
        if row is None:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        return TenantRecord(name=row["name"],
                            config=json.loads(row["config"]),
                            created_at=row["created_at"])

    def list_tenants(self) -> list[TenantRecord]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT name, config, created_at FROM tenants "
                "ORDER BY name").fetchall()
        return [TenantRecord(name=row["name"],
                             config=json.loads(row["config"]),
                             created_at=row["created_at"])
                for row in rows]

    def delete_tenant(self, name: str) -> None:
        with self._lock:
            tenant_id = self._tenant_id(name)
            # ON DELETE CASCADE clears snapshots (whose delete trigger
            # clears the listing), blobs, log entries and the floor.
            self._connection.execute(
                "DELETE FROM tenants WHERE tenant_id = ?", (tenant_id,))
            self._connection.commit()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(self, tenant: str, document: dict, *,
                      wal_seq: int = 0) -> SnapshotRecord:
        blob = json.dumps(document).encode("utf-8")
        meta = snapshot_meta_from_document(document)
        created = utc_now()
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            row = self._connection.execute(
                "SELECT COALESCE(MAX(version), 0) AS v FROM snapshots "
                "WHERE tenant_id = ?", (tenant_id,)).fetchone()
            version = int(row["v"]) + 1
            cursor = self._connection.execute(
                "INSERT INTO snapshots (tenant_id, version, created_at, "
                "size_bytes, mechanism, epsilon, reports_ingested, wal_seq) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (tenant_id, version, created, len(blob), meta["mechanism"],
                 meta["epsilon"], meta["reports_ingested"], int(wal_seq)))
            self._connection.execute(
                "INSERT INTO snapshot_blobs (snapshot_id, document) "
                "VALUES (?, ?)", (cursor.lastrowid, blob))
            self._connection.commit()
        return SnapshotRecord(tenant=tenant, version=version,
                              created_at=created, size_bytes=len(blob),
                              mechanism=meta["mechanism"],
                              epsilon=meta["epsilon"],
                              reports_ingested=meta["reports_ingested"],
                              wal_seq=int(wal_seq))

    def load_snapshot(self, tenant: str,
                      version: int | None = None) -> tuple[dict,
                                                           SnapshotRecord]:
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            if version is None:
                row = self._connection.execute(
                    "SELECT MAX(version) AS v FROM snapshots "
                    "WHERE tenant_id = ?", (tenant_id,)).fetchone()
                if row["v"] is None:
                    raise FileNotFoundError(
                        f"tenant {tenant!r} has no snapshots in {self.path}")
                version = int(row["v"])
            row = self._connection.execute(
                "SELECT snapshots.*, snapshot_blobs.document "
                "FROM snapshots JOIN snapshot_blobs USING (snapshot_id) "
                "WHERE tenant_id = ? AND version = ?",
                (tenant_id, version)).fetchone()
        if row is None:
            raise FileNotFoundError(
                f"no snapshot version {version} for tenant {tenant!r} "
                f"in {self.path}")
        document = json.loads(row["document"])
        return document, self._snapshot_record(row, tenant)

    def list_snapshots(self, tenant: str | None = None) -> list[SnapshotRecord]:
        with self._lock:
            if tenant is None:
                rows = self._connection.execute(
                    "SELECT * FROM snapshot_listing "
                    "ORDER BY tenant, version").fetchall()
                return [self._snapshot_record(row, row["tenant"])
                        for row in rows]
            self._tenant_id(tenant)  # raise on unknown tenants
            rows = self._connection.execute(
                "SELECT * FROM snapshot_listing WHERE tenant = ? "
                "ORDER BY version", (tenant,)).fetchall()
        return [self._snapshot_record(row, tenant) for row in rows]

    def prune_snapshots(self, tenant: str, keep_last: int) -> int:
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            cursor = self._connection.execute(
                "DELETE FROM snapshots WHERE tenant_id = ? AND version <= ("
                "  SELECT COALESCE(MAX(version), 0) - ? FROM snapshots "
                "  WHERE tenant_id = ?)",
                (tenant_id, keep_last, tenant_id))
            self._connection.commit()
        return cursor.rowcount

    # ------------------------------------------------------------------
    # Write-ahead ingest log
    # ------------------------------------------------------------------
    def append_ingest(self, tenant: str, rows: list,
                      domain_size: int | None = None) -> int:
        created = utc_now()
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            seq = self.last_ingest_seq(tenant) + 1
            self._connection.execute(
                "INSERT INTO ingest_log (tenant_id, seq, rows, domain_size, "
                "created_at) VALUES (?, ?, ?, ?, ?)",
                (tenant_id, seq, json.dumps(rows), domain_size, created))
            self._connection.execute(
                "UPDATE wal_floor SET last_seq = ? "
                "WHERE tenant_id = ? AND last_seq < ?",
                (seq, tenant_id, seq))
            self._connection.commit()
        return seq

    def pending_ingest(self, tenant: str,
                       after_seq: int = 0) -> list[IngestLogEntry]:
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            rows = self._connection.execute(
                "SELECT seq, rows, domain_size, created_at FROM ingest_log "
                "WHERE tenant_id = ? AND seq > ? ORDER BY seq",
                (tenant_id, after_seq)).fetchall()
        return [IngestLogEntry(tenant=tenant, seq=int(row["seq"]),
                               rows=json.loads(row["rows"]),
                               domain_size=row["domain_size"],
                               created_at=row["created_at"])
                for row in rows]

    def prune_ingest(self, tenant: str, upto_seq: int) -> int:
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            cursor = self._connection.execute(
                "DELETE FROM ingest_log WHERE tenant_id = ? AND seq <= ?",
                (tenant_id, upto_seq))
            self._connection.commit()
        return cursor.rowcount

    def discard_ingest(self, tenant: str, seq: int) -> None:
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            self._connection.execute(
                "DELETE FROM ingest_log WHERE tenant_id = ? AND seq = ?",
                (tenant_id, seq))
            self._connection.commit()

    def ingest_log_depth(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is None:
                row = self._connection.execute(
                    "SELECT COUNT(*) AS n FROM ingest_log").fetchone()
            else:
                tenant_id = self._tenant_id(tenant)
                row = self._connection.execute(
                    "SELECT COUNT(*) AS n FROM ingest_log "
                    "WHERE tenant_id = ?", (tenant_id,)).fetchone()
        return int(row["n"])

    def last_ingest_seq(self, tenant: str) -> int:
        with self._lock:
            tenant_id = self._tenant_id(tenant)
            floor = self._connection.execute(
                "SELECT last_seq FROM wal_floor WHERE tenant_id = ?",
                (tenant_id,)).fetchone()
            newest = self._connection.execute(
                "SELECT COALESCE(MAX(seq), 0) AS s FROM ingest_log "
                "WHERE tenant_id = ?", (tenant_id,)).fetchone()
        return max(int(floor["last_seq"]) if floor is not None else 0,
                   int(newest["s"]))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def pragma(self, name: str):
        """One pragma's current value (introspection for tests/docs)."""
        with self._lock:
            return self._connection.execute(f"PRAGMA {name}").fetchone()[0]

    def location(self) -> str:
        return str(self.path)

    def close(self) -> None:
        with self._lock:
            self._connection.close()
