"""Evaluation metrics (MAE and error distributions)."""

from .errors import (RepeatedRunSummary, absolute_errors, error_histogram,
                     mean_absolute_error, mean_squared_error)

__all__ = [
    "RepeatedRunSummary",
    "absolute_errors",
    "error_histogram",
    "mean_absolute_error",
    "mean_squared_error",
]
