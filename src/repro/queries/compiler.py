"""Plan compiler: fused NumPy execution layout for typed workloads.

:class:`~repro.queries.QueryPlanner` lowers a mixed workload into a
flat list of :class:`~repro.queries.RangeQuery` primitives; answering
that plan still pays a per-call Python pass — re-partitioning thousands
of primitives by dimension and grid, rebuilding interval tuples, and
running one combiner closure per query on reassembly.  The compiler
removes that interpretation tax: :class:`CompiledPlan` walks the plan
*once* and freezes everything the hot path needs into NumPy index
arrays:

* **execution groups** — primitives partitioned by dimension and
  attribute signature up front: one :class:`SingleGroup` per queried
  attribute (positions + endpoint arrays), one :class:`PairGroup` per
  attribute pair, and for λ > 2 primitives the flattened C(λ,2)
  sub-pair layout plus the per-λ Weighted-Update constraint structure
  (:class:`MultiDimGroup`) — so a pair-decomposable mechanism answers
  the whole workload with one vectorised gather per group and one
  batched Algorithm-2 iteration per distinct λ, no per-primitive
  Python;
* **reassembly arrays** — scalar results (range, point, count) become
  one fancy-indexed gather with a precomputed scale vector (count
  queries fold their population in); marginal/top-k tables keep their
  precomputed slices and shapes.

Compiled plans are cached across requests by :class:`PlanCache`, a
thread-safe bounded LRU keyed by a stable (schema, workload) hash
(:func:`plan_cache_key`), with hit/miss/eviction counters the serving
tier surfaces in its health document.

The compiled path is *semantics-preserving by construction*: every
group keeps its primitives in plan order and every fused gather runs
the same vectorised kernels (``Grid1D.answer_ranges``,
``Grid2D.answer_ranges``, ``weighted_update_batch``) the interpreted
batch engine runs, so answers match the per-query planner path
bitwise.  ``tests/test_plan_compiler.py`` pins that differentially for
all five query kinds across all nine mechanisms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from threading import Lock

import numpy as np

from ..postprocess.norm_sub import norm_sub
from .ir import (DistributionResult, MarginalQuery, PointQuery,
                 PredicateCountQuery, Query, QueryResult, ScalarResult,
                 TopKQuery, TopKResult)
from .planner import QueryPlan, top_k_cells
from .range_query import RangeQuery

__all__ = ["CompiledPlan", "MultiDimGroup", "PairGroup", "PlanCache",
           "SingleGroup", "plan_cache_key", "workload_fingerprint"]


# ----------------------------------------------------------------------
# Execution groups
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SingleGroup:
    """All 1-D primitives of one attribute, as endpoint arrays.

    ``positions`` indexes into the flat primitive-answer vector (or the
    sub-answer vector when the group feeds a λ > 2 decomposition).
    """

    attribute: int
    positions: np.ndarray
    lows: np.ndarray
    highs: np.ndarray


@dataclass(frozen=True)
class PairGroup:
    """All 2-D primitives of one (sorted) attribute pair.

    Primitives keep plan order within the group; the mechanism resolves
    grid orientation once per group instead of once per primitive.
    """

    key: tuple[int, int]
    positions: np.ndarray
    row_lows: np.ndarray
    row_highs: np.ndarray
    col_lows: np.ndarray
    col_highs: np.ndarray


@dataclass(frozen=True)
class MultiDimGroup:
    """All λ-D primitives (λ > 2) of one dimension.

    ``sub_index_matrix`` has one row per primitive holding the indices
    of its C(λ,2) sub-answers (in
    :meth:`~repro.queries.RangeQuery.pairwise_subqueries` order) inside
    the flat sub-answer vector; ``index_sets`` is Algorithm 2's
    constraint structure for this λ, precompiled once.
    """

    dimension: int
    positions: np.ndarray
    sub_index_matrix: np.ndarray
    index_sets: list[np.ndarray] = field(repr=False)


# ----------------------------------------------------------------------
# Reassembly layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ScalarLayout:
    """Vectorised reassembly of every scalar-valued query in the plan."""

    result_positions: list[int]
    queries: list[Query]
    primitive_indices: np.ndarray
    scales: np.ndarray
    populations: list[int | None]


@dataclass(frozen=True)
class _TableLayout:
    """One marginal/top-k query's slice of the primitive answers."""

    result_position: int
    query: Query
    start: int
    stop: int
    shape: tuple[int, ...]
    top_k: int | None


class CompiledPlan:
    """A :class:`~repro.queries.QueryPlan` frozen into fused index arrays.

    Build with :meth:`from_plan`; mechanisms execute the groups through
    their vectorised primitives and hand the flat answer vector to
    :meth:`assemble`.  Mechanisms without fused hooks fall back to
    :attr:`flat_ranges` — the plan's primitive list, materialised once
    instead of per call.
    """

    def __init__(self, plan: QueryPlan, flat_ranges: list[RangeQuery],
                 single_groups: list[SingleGroup],
                 pair_groups: list[PairGroup],
                 multi_pair_groups: list[PairGroup],
                 multi_dim_groups: list[MultiDimGroup],
                 n_sub_entries: int, scalars: _ScalarLayout,
                 tables: list[_TableLayout]):
        self.plan = plan
        self.flat_ranges = flat_ranges
        self.n_primitives = len(flat_ranges)
        self.n_queries = len(plan.lowered)
        self.single_groups = single_groups
        self.pair_groups = pair_groups
        self.multi_pair_groups = multi_pair_groups
        self.multi_dim_groups = multi_dim_groups
        self.n_sub_entries = n_sub_entries
        self._scalars = scalars
        self._tables = tables

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_plan(cls, plan: QueryPlan, domain_size: int,
                  population: int | None = None) -> "CompiledPlan":
        """Compile a validated plan into its fused execution layout.

        ``domain_size`` shapes marginal/top-k tables (a λ-attribute
        marginal's primitives reshape to ``(c,) * λ``); ``population``
        is the fallback scale for count queries that carry none of
        their own — the same value the planner resolved at lowering
        time, so compiled count answers match the combiner's exactly.
        """
        domain_size = int(domain_size)
        flat_ranges: list[RangeQuery] = []
        singles: dict[int, list[tuple[int, int, int]]] = {}
        pairs: dict[tuple[int, int], list[tuple[int, int, int, int, int]]] = {}
        multi_pairs: dict[tuple[int, int],
                          list[tuple[int, int, int, int, int]]] = {}
        multis_by_dim: dict[int, tuple[list[int], list[list[int]]]] = {}
        n_sub = 0

        scalar_positions: list[int] = []
        scalar_queries: list[Query] = []
        scalar_primitives: list[int] = []
        scalar_scales: list[float] = []
        scalar_populations: list[int | None] = []
        tables: list[_TableLayout] = []

        for result_position, entry in enumerate(plan.lowered):
            query = entry.query
            start = len(flat_ranges)
            for primitive in entry.ranges:
                index = len(flat_ranges)
                flat_ranges.append(primitive)
                predicates = primitive.predicates
                if len(predicates) == 1:
                    predicate = predicates[0]
                    singles.setdefault(predicate.attribute, []).append(
                        (index, predicate.low, predicate.high))
                elif len(predicates) == 2:
                    first, second = predicates
                    pairs.setdefault((first.attribute, second.attribute),
                                     []).append(
                        (index, first.low, first.high, second.low, second.high))
                else:
                    sub_indices = []
                    # Same lexicographic-by-position order as
                    # pairwise_subqueries / the interpreted multi path.
                    for i in range(len(predicates)):
                        for j in range(i + 1, len(predicates)):
                            multi_pairs.setdefault(
                                (predicates[i].attribute,
                                 predicates[j].attribute), []).append(
                                (n_sub, predicates[i].low, predicates[i].high,
                                 predicates[j].low, predicates[j].high))
                            sub_indices.append(n_sub)
                            n_sub += 1
                    positions, rows = multis_by_dim.setdefault(
                        len(predicates), ([], []))
                    positions.append(index)
                    rows.append(sub_indices)
            stop = len(flat_ranges)

            if isinstance(query, (RangeQuery, PointQuery)):
                scalar_positions.append(result_position)
                scalar_queries.append(query)
                scalar_primitives.append(start)
                scalar_scales.append(1.0)
                scalar_populations.append(None)
            elif isinstance(query, PredicateCountQuery):
                scale = (query.population if query.population is not None
                         else population)
                assert scale is not None, \
                    "planner resolved the population at lowering time"
                scalar_positions.append(result_position)
                scalar_queries.append(query)
                scalar_primitives.append(start)
                scalar_scales.append(float(scale))
                scalar_populations.append(int(scale))
            elif isinstance(query, MarginalQuery):
                tables.append(_TableLayout(result_position, query, start, stop,
                                           (domain_size,) * query.dimension,
                                           None))
            elif isinstance(query, TopKQuery):
                dimension = query.marginal().dimension
                tables.append(_TableLayout(result_position, query, start, stop,
                                           (domain_size,) * dimension,
                                           int(query.k)))
            else:  # pragma: no cover - planner rejects unknown kinds first
                raise TypeError(f"cannot compile {type(query).__name__}")

        from ..core.query_estimation import lambda_constraint_index_sets

        def pair_group(key, rows) -> PairGroup:
            data = np.asarray(rows, dtype=np.int64)
            return PairGroup(key, data[:, 0], data[:, 1], data[:, 2],
                             data[:, 3], data[:, 4])

        return cls(
            plan=plan,
            flat_ranges=flat_ranges,
            single_groups=[
                SingleGroup(attribute, *np.asarray(rows, dtype=np.int64).T)
                for attribute, rows in singles.items()],
            pair_groups=[pair_group(key, rows)
                         for key, rows in pairs.items()],
            multi_pair_groups=[pair_group(key, rows)
                               for key, rows in multi_pairs.items()],
            multi_dim_groups=[
                MultiDimGroup(dimension,
                              np.asarray(positions, dtype=np.int64),
                              np.asarray(rows, dtype=np.int64),
                              lambda_constraint_index_sets(dimension))
                for dimension, (positions, rows) in multis_by_dim.items()],
            n_sub_entries=n_sub,
            scalars=_ScalarLayout(scalar_positions, scalar_queries,
                                  np.asarray(scalar_primitives,
                                             dtype=np.int64),
                                  np.asarray(scalar_scales, dtype=float),
                                  scalar_populations),
            tables=tables)

    # ------------------------------------------------------------------
    # Reassembly
    # ------------------------------------------------------------------
    def assemble(self, answers: np.ndarray) -> list[QueryResult]:
        """Typed results from the flat primitive answers, in one gather.

        Scalar queries (range, point, count) are gathered and scaled as
        one vectorised pass; marginal tables reshape precomputed
        slices; top-k queries run Norm-Sub + arg-top-k per query (that
        is the query's actual post-processing, not interpretation
        overhead).
        """
        answers = np.asarray(answers, dtype=float)
        if answers.shape != (self.n_primitives,):
            raise ValueError(
                f"plan expects {self.n_primitives} primitive answers, got "
                f"shape {answers.shape}")
        results: list[QueryResult | None] = [None] * self.n_queries
        scalars = self._scalars
        if scalars.queries:
            values = answers[scalars.primitive_indices] * scalars.scales
            for position, query, value, scale in zip(
                    scalars.result_positions, scalars.queries, values,
                    scalars.populations):
                results[position] = ScalarResult(query, float(value),
                                                 population=scale)
        for table in self._tables:
            block = answers[table.start:table.stop].reshape(table.shape)
            if table.top_k is None:
                results[table.result_position] = DistributionResult(
                    table.query, block)
            else:
                estimate = norm_sub(block)
                cells, values = top_k_cells(estimate, table.top_k)
                results[table.result_position] = TopKResult(
                    table.query, cells, values)
        return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Cache keying
# ----------------------------------------------------------------------
def workload_fingerprint(queries) -> str:
    """A stable content hash of a typed workload.

    Queries are frozen dataclasses with deterministic ``repr``, so the
    SHA-256 over their reprs is stable across processes and restarts —
    unlike ``hash()``, which is salted per interpreter for strings and
    varies for tuples of them.
    """
    digest = hashlib.sha256()
    for query in queries:
        digest.update(repr(query).encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


def plan_cache_key(schema: tuple, queries) -> tuple:
    """LRU key for a compiled plan: fitted schema + workload hash.

    ``schema`` is the answering mechanism's ``(n_attributes,
    domain_size, population)`` triple — refits and population changes
    (which alter count-query scaling) therefore miss instead of serving
    a stale plan.
    """
    return (*schema, workload_fingerprint(queries))


class PlanCache:
    """Thread-safe bounded LRU of compiled plans with usage counters.

    ``get``/``put`` are guarded by one lock; compilation itself runs
    outside it, so concurrent misses may compile the same plan twice —
    the second ``put`` wins, both plans answer identically, and
    ``hits + misses`` always equals the number of lookups.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = Lock()
        self._entries: dict[tuple, CompiledPlan] = {}
        self._order: list[tuple] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def values(self) -> list[CompiledPlan]:
        """The cached plans, least recently used first."""
        with self._lock:
            return [self._entries[key] for key in self._order]

    def get(self, key: tuple) -> CompiledPlan | None:
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self.hits += 1
            self._order.remove(key)
            self._order.append(key)
            return plan

    def put(self, key: tuple, plan: CompiledPlan) -> None:
        with self._lock:
            if key in self._entries:
                self._order.remove(key)
            self._entries[key] = plan
            self._order.append(key)
            while len(self._order) > self.capacity:
                evicted = self._order.pop(0)
                del self._entries[evicted]
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._order.clear()

    def stats(self) -> dict:
        """Counters for health documents and the concurrency tests."""
        with self._lock:
            return {"size": len(self._entries), "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}
