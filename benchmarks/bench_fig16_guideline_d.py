"""Figure 16: guideline verification at d = 4, 8, 10.

Paper shape: same conclusion as Figure 7 — the recommended α1 = 0.7,
α2 = 0.03 keep HDG close to the best fixed granularity combination for
every attribute count.
"""

from _scale import current_scale, report

from repro.experiments import appendix, figures


def bench_figure_16(benchmark):
    scale = current_scale()
    quick = scale.n_users <= 100_000
    attribute_counts = (4, 8) if quick else (4, 8, 10)
    combos = ((8, 2), (16, 4), (32, 8)) if quick else figures.GUIDELINE_COMBINATIONS

    def run():
        return appendix.figure_16_guideline_d(
            datasets=scale.datasets[:1], attribute_counts=attribute_counts,
            epsilons=scale.epsilons[:3], combinations=combos,
            n_users=scale.n_users, domain_size=scale.domain_size, volume=0.5,
            n_queries=scale.n_queries, n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for d, per_dataset in results.items():
        lines.append(figures.format_figure_results(per_dataset,
                                                   f"Figure 16: guideline at d={d}"))
    report("fig16_guideline_d", "\n".join(lines))
    for d, per_dataset in results.items():
        for dataset, sweep in per_dataset.items():
            series = sweep.series()
            assert "HDG" in series
