"""User partitioning (the "principle of dividing users", Section 2.3).

In the LDP setting, when multiple pieces of information are needed the
standard strategy is to split the population into disjoint groups and let
each group answer one sub-task with the full privacy budget, instead of
splitting the budget.  All mechanisms in this library obtain their user
groups from :func:`partition_users` so that the partitioning logic (and
its randomisation) lives in one place.
"""

from __future__ import annotations

import numpy as np


def partition_users(n_users: int, n_groups: int,
                    rng: np.random.Generator) -> list[np.ndarray]:
    """Randomly split ``n_users`` indices into ``n_groups`` near-equal groups.

    Groups differ in size by at most one user.  Some groups may be empty
    when ``n_groups > n_users``; callers are expected to handle that (it
    corresponds to the paper's observation that mechanisms needing many
    groups drown in noise for small populations).
    """
    if n_users < 1:
        raise ValueError("n_users must be positive")
    if n_groups < 1:
        raise ValueError("n_groups must be positive")
    permutation = rng.permutation(n_users)
    return [np.sort(part) for part in np.array_split(permutation, n_groups)]


def partition_users_weighted(n_users: int, group_sizes: list[int],
                             rng: np.random.Generator) -> list[np.ndarray]:
    """Split users into groups with explicitly requested sizes.

    Used by the HDG user-split experiment (Figure 15) where the fraction of
    users assigned to 1-D grids (σ = n1 / n) is varied away from the
    default equal-population split.  Sizes must sum to ``n_users``.
    """
    if sum(group_sizes) != n_users:
        raise ValueError(
            f"group sizes sum to {sum(group_sizes)}, expected {n_users}")
    if any(size < 0 for size in group_sizes):
        raise ValueError("group sizes must be non-negative")
    permutation = rng.permutation(n_users)
    groups = []
    start = 0
    for size in group_sizes:
        groups.append(np.sort(permutation[start:start + size]))
        start += size
    return groups


def split_population(n_users: int, fraction_first: float) -> tuple[int, int]:
    """Split a population into two blocks by a fraction (σ and 1 - σ)."""
    if not 0.0 < fraction_first < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction_first}")
    first = int(round(n_users * fraction_first))
    first = min(max(first, 1), n_users - 1)
    return first, n_users - first
