"""Long-lived query service over the LDP mechanisms.

A :class:`QueryService` keeps a fitted estimator hot for answering
workloads while (optionally) ingesting new privatized reports through
the shard ``partial_fit`` path.  It runs in one of two modes:

* **streaming** — constructed from a shardable mechanism name or an
  un-fitted shardable instance.  ``ingest`` feeds batches into an open
  *collector*; a *re-finalize* (triggered automatically every
  ``refinalize_every`` reports, or on demand with ``refinalize``)
  clones the collector's accumulator state, runs the paper's Phase-2
  machinery on the clone and atomically swaps it in as the serving
  estimator.  Answers therefore stay fresh without ever refitting from
  scratch, and collection never pauses for finalization.
* **refit streaming** (``ingest_mode="refit"``) — constructed from
  *any* snapshotable mechanism name, shardable or not (LHIO, HIO,
  CALM, MSW, Uni included).  ``ingest`` buffers the raw batches; a
  re-finalize runs the full ``fit()`` on a fresh same-seeded instance
  over everything buffered so far and swaps it in.  Refitting from
  scratch is deterministic in (seed, rows), which is what lets the
  multi-tenant write-ahead-log recovery replay a crashed refit
  tenant bitwise (``tests/test_crash_recovery.py``).
* **static** — constructed from an already-fitted mechanism (any of
  the nine, shardable or not).  Queries and snapshots work; ``ingest``
  raises :class:`ServiceError`.

Either streaming mode can additionally run **distributed**
(``ingest_workers=N``): ingest is routed through a multi-process
:class:`~repro.ingest.IngestTier` whose collector workers
``partial_fit`` into shared-memory accumulators (stream) or append to
shared row logs (refit), and re-finalize folds the worker state
through the same ``merge``/``finalize`` (or refit) path.  Results are
bitwise identical to the equivalent single-process shard plan; see
``docs/ingest.md`` and ``tests/test_distributed_ingest.py``.

The whole service serializes to one JSON document
(:meth:`QueryService.state_dict`): the estimator's fitted state via
``save_state`` plus the collector's pending accumulators via
``shard_state``, so a restart restores both the answers *and* the
not-yet-finalized reports.  :class:`~repro.serving.SnapshotStore`
versions those documents on disk.

Concurrency: ingest, re-finalize and snapshot capture are serialized
by the service's locks, but the *read path is lock-free* — every
finalize/restore publishes an immutable :class:`~repro.serving.epoch.
EstimatorEpoch` with a single atomic reference assignment, and
``query``/``query_typed``/``query_wire``/``query_wire_batch`` load
that reference once and answer against it with no lock at all (see
:mod:`repro.serving.epoch` and docs/serving.md for the read-
consistency contract).  The answering hot path routes through the
mechanisms' compiled-plan cache (:mod:`repro.queries.compiler`) plus
a per-service answer cache keyed by ``(epoch_id, workload)``, so
repeated workloads skip planning — and on a cache hit, answering —
entirely; :meth:`QueryService.query_wire_batch` answers a whole batch
of workloads against one consistent epoch for the batched ``/query``
wire form.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core import RangeQueryMechanism
from ..core.base import check_state_document
from ..datasets import Dataset
from ..ingest import IngestTier
from ..pipeline.aggregator import SHARDABLE_MECHANISMS
from ..queries import (MarginalQuery, PointQuery, Predicate,
                       PredicateCountQuery, Query, QueryResult, RangeQuery,
                       TopKQuery, query_kind)
from .epoch import (DEFAULT_ANSWER_CACHE_ENTRIES, AnswerCache,
                    EstimatorEpoch)
from .snapshot import (SNAPSHOT_MECHANISMS, SnapshotInfo, SnapshotStore,
                       restore_mechanism)

#: Format tag written into serialized service states.
SERVICE_SNAPSHOT_FORMAT = "repro.service-snapshot"
SERVICE_SNAPSHOT_VERSION = 1


class ServiceError(RuntimeError):
    """An operation the service cannot perform in its current state."""


# ----------------------------------------------------------------------
# Wire format: typed queries and results as plain JSON values
# ----------------------------------------------------------------------
def predicate_from_wire(obj) -> Predicate:
    """One predicate from ``[attribute, low, high]`` or the dict form."""
    if isinstance(obj, dict):
        return Predicate(int(obj["attribute"]), int(obj["low"]),
                         int(obj["high"]))
    attribute, low, high = obj
    return Predicate(int(attribute), int(low), int(high))


def _predicates_from_wire(obj) -> tuple[Predicate, ...]:
    return tuple(predicate_from_wire(item) for item in obj["predicates"])


def _assignment_from_wire(obj) -> tuple[tuple[int, int], ...]:
    """A point query's cell from ``[[attr, value], ...]`` or a dict."""
    assignment = obj["assignment"]
    if isinstance(assignment, dict):
        return tuple((int(attribute), int(value))
                     for attribute, value in assignment.items())
    return tuple((int(attribute), int(value))
                 for attribute, value in assignment)


def query_from_wire(obj) -> Query:
    """One typed query from its JSON wire form.

    The dict form carries an optional ``"type"`` discriminator —
    ``range`` (default, for backward compatibility), ``marginal``,
    ``point``, ``count`` or ``topk``:

    * ``{"type": "range", "predicates": [[a, lo, hi], ...]}``
    * ``{"type": "marginal", "attributes": [a, ...]}``
    * ``{"type": "point", "assignment": [[a, v], ...]}``
    * ``{"type": "count", "predicates": [...], "population"?: n}``
    * ``{"type": "topk", "attributes": [a, ...], "k": k}``

    A bare predicate list (the pre-IR wire form) still parses as a
    range query.
    """
    if not isinstance(obj, dict):
        return RangeQuery(tuple(predicate_from_wire(item) for item in obj))
    kind = obj.get("type", "range")
    if kind == "range":
        return RangeQuery(_predicates_from_wire(obj))
    if kind == "marginal":
        return MarginalQuery(tuple(int(a) for a in obj["attributes"]))
    if kind == "point":
        return PointQuery(_assignment_from_wire(obj))
    if kind == "count":
        population = obj.get("population")
        return PredicateCountQuery(
            _predicates_from_wire(obj),
            population=int(population) if population is not None else None)
    if kind == "topk":
        return TopKQuery(tuple(int(a) for a in obj["attributes"]),
                         k=int(obj.get("k", 1)))
    raise ValueError(f"unknown query type {kind!r}; known: "
                     "range, marginal, point, count, topk")


def queries_from_wire(objs) -> list[Query]:
    """A workload from a JSON list of wire-format queries."""
    return [query_from_wire(obj) for obj in objs]


def query_to_wire(query: Query) -> dict:
    """The wire form of a typed query (inverse of :func:`query_from_wire`)."""
    if isinstance(query, RangeQuery):
        return {"predicates": [[p.attribute, p.low, p.high]
                               for p in query.predicates]}
    if isinstance(query, MarginalQuery):
        return {"type": "marginal", "attributes": list(query.attributes)}
    if isinstance(query, PointQuery):
        return {"type": "point",
                "assignment": [[attribute, value]
                               for attribute, value in query.assignment]}
    if isinstance(query, PredicateCountQuery):
        document = {"type": "count",
                    "predicates": [[p.attribute, p.low, p.high]
                                   for p in query.predicates]}
        if query.population is not None:
            document["population"] = int(query.population)
        return document
    if isinstance(query, TopKQuery):
        return {"type": "topk", "attributes": list(query.attributes),
                "k": int(query.k)}
    raise TypeError(f"cannot serialize {type(query).__name__} "
                    f"({query_kind(query)})")


class QueryService:
    """Ingest-and-answer front-end over one mechanism.

    Parameters
    ----------
    mechanism:
        A shardable mechanism name (``"TDG"``, ``"HDG"``, ``"ITDG"``,
        ``"IHDG"``) or un-fitted shardable instance for streaming mode;
        or any *fitted* mechanism instance for static serving.
    epsilon:
        Per-user privacy budget (ignored when an instance is passed).
    seed:
        Seed for the collector's randomness (name-based construction).
    refinalize_every:
        Automatically re-finalize after this many ingested reports
        accumulate since the last finalize.  ``None`` (default) means
        re-finalization only happens on demand via :meth:`refinalize`.
    total_users:
        Expected total population, forwarded to ``partial_fit`` so the
        guideline granularities are pinned up front.  Defaults to the
        first batch's size (fine for one service; see docs/serving.md).
    domain_size:
        Default attribute domain size ``c`` assumed for raw-row ingest
        batches; per-call and :class:`~repro.datasets.Dataset` values
        override it.
    ingest_mode:
        ``"stream"`` (default) ingests through the shard
        ``partial_fit`` path and requires a shardable mechanism;
        ``"refit"`` buffers the raw batches and re-finalizes by
        fitting a fresh same-seeded instance from scratch, which works
        for every snapshotable mechanism.  Ignored when a fitted
        instance is passed (static serving).
    ingest_workers:
        When set (>= 1), ingest runs through a multi-process
        :class:`~repro.ingest.IngestTier` with this many collector
        workers instead of an in-process collector.  Requires
        name-based construction; works with both ingest modes.
    plan_cache_entries:
        Capacity of the estimator's compiled-plan LRU (``None`` keeps
        the mechanism default); applied to every published estimator.
    answer_cache_entries:
        Capacity of the per-service answer cache (``0`` disables it;
        ``None`` keeps the default of
        :data:`~repro.serving.epoch.DEFAULT_ANSWER_CACHE_ENTRIES`).
    mechanism_kwargs:
        Extra keyword arguments for name-based mechanism construction.
    """

    #: Legal ``ingest_mode`` values.
    INGEST_MODES = ("stream", "refit")

    def __init__(self, mechanism: str | RangeQueryMechanism = "HDG",
                 epsilon: float = 1.0, *, seed: int | None = None,
                 refinalize_every: int | None = None,
                 total_users: int | None = None,
                 domain_size: int | None = None,
                 ingest_mode: str = "stream",
                 ingest_workers: int | None = None,
                 plan_cache_entries: int | None = None,
                 answer_cache_entries: int | None = None,
                 **mechanism_kwargs):
        if refinalize_every is not None and refinalize_every < 1:
            raise ValueError("refinalize_every must be >= 1 when set")
        if ingest_mode not in self.INGEST_MODES:
            raise ValueError(f"unknown ingest_mode {ingest_mode!r}; "
                             f"known: {list(self.INGEST_MODES)}")
        if ingest_workers is not None and ingest_workers < 1:
            raise ValueError("ingest_workers must be >= 1 when set")
        if plan_cache_entries is not None and plan_cache_entries < 1:
            raise ValueError("plan_cache_entries must be >= 1 when set")
        if answer_cache_entries is not None and answer_cache_entries < 0:
            raise ValueError("answer_cache_entries must be >= 0 when set "
                             "(0 disables answer caching)")
        self._lock = threading.RLock()
        #: Serializes whole re-finalize operations (capture → Phase 2 →
        #: swap) without holding the state lock through the heavy part.
        self._refinalize_lock = threading.Lock()
        self._estimator: RangeQueryMechanism | None = None
        #: The published read view; queries load this reference once
        #: and answer against it lock-free.  Only :meth:`_publish`
        #: (always called under ``_lock``) replaces it.
        self._epoch: EstimatorEpoch | None = None
        self._epoch_counter = 0
        self.plan_cache_entries = (int(plan_cache_entries)
                                   if plan_cache_entries is not None else None)
        self.answer_cache_entries = (
            int(answer_cache_entries) if answer_cache_entries is not None
            else DEFAULT_ANSWER_CACHE_ENTRIES)
        self._answer_cache = AnswerCache(self.answer_cache_entries)
        self._collector: RangeQueryMechanism | None = None
        #: Refit-mode state: buffered raw batches + rebuild recipe.
        self._refit: dict | None = None
        #: Distributed-mode recipe (ingest_workers set); the tier itself
        #: is built lazily on the first batch (schema pins its layout).
        self._distributed: dict | None = None
        self._tier: IngestTier | None = None
        self._closed = False
        self._pending_rows: list[np.ndarray] = []
        self._pending_schema: tuple[int, int] | None = None
        self.refinalize_every = refinalize_every
        self.total_users = total_users
        self.domain_size = domain_size
        self.reports_ingested = 0
        self.reports_since_finalize = 0
        self.finalize_count = 0

        if ingest_workers is not None:
            if isinstance(mechanism, RangeQueryMechanism):
                raise ValueError(
                    "ingest_workers requires name-based construction "
                    "(worker processes rebuild the mechanism from its "
                    "name and config)")
            if mechanism not in SNAPSHOT_MECHANISMS:
                raise ValueError(
                    f"unknown mechanism {mechanism!r}; "
                    f"known: {sorted(SNAPSHOT_MECHANISMS)}")
            if ingest_mode == "stream":
                probe = SNAPSHOT_MECHANISMS[mechanism](
                    float(epsilon), **mechanism_kwargs)
                if not probe.supports_sharding:
                    raise ValueError(
                        f"{mechanism} does not support sharded "
                        "aggregation; use ingest_mode='refit'")
            self._distributed = {
                "name": mechanism, "epsilon": float(epsilon),
                "seed": seed, "kwargs": dict(mechanism_kwargs),
                "ingest_mode": ingest_mode,
                "workers": int(ingest_workers),
                "planning_users": None,
            }
        elif isinstance(mechanism, RangeQueryMechanism):
            if mechanism.is_fitted:
                self._publish(mechanism)
            else:
                if not mechanism.supports_sharding:
                    raise ValueError(
                        f"{type(mechanism).__name__} does not support "
                        "incremental ingest; pass a fitted instance for "
                        "static serving, or construct by name with "
                        "ingest_mode='refit'")
                self._collector = mechanism
        elif ingest_mode == "refit":
            try:
                factory = SNAPSHOT_MECHANISMS[mechanism]
            except KeyError:
                raise ValueError(
                    f"unknown mechanism {mechanism!r}; "
                    f"known: {sorted(SNAPSHOT_MECHANISMS)}") from None
            self._refit = {"name": mechanism, "factory": factory,
                           "epsilon": float(epsilon), "seed": seed,
                           "kwargs": dict(mechanism_kwargs)}
        else:
            try:
                factory = SHARDABLE_MECHANISMS[mechanism]
            except KeyError:
                raise ValueError(
                    f"unknown or non-shardable mechanism {mechanism!r}; "
                    f"known: {sorted(SHARDABLE_MECHANISMS)} "
                    "(any snapshotable mechanism works with "
                    "ingest_mode='refit')") from None
            self._collector = factory(epsilon, seed=seed, **mechanism_kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mechanism_name(self) -> str:
        """Paper name of the served mechanism (e.g. ``"HDG"``)."""
        if self._distributed is not None:
            return self._distributed["name"]
        if self._refit is not None:
            return self._refit["name"]
        return (self._collector or self._estimator).name

    @property
    def epsilon(self) -> float:
        """Per-user privacy budget of the served mechanism."""
        if self._distributed is not None:
            return self._distributed["epsilon"]
        if self._refit is not None:
            return self._refit["epsilon"]
        return (self._collector or self._estimator).epsilon

    @property
    def ingest_mode(self) -> str | None:
        """``"stream"``, ``"refit"``, or None for static services."""
        if self._distributed is not None:
            return self._distributed["ingest_mode"]
        if self._refit is not None:
            return "refit"
        return "stream" if self._collector is not None else None

    @property
    def ingest_workers(self) -> int | None:
        """Collector worker count, or None for in-process ingest."""
        if self._distributed is not None:
            return self._distributed["workers"]
        return None

    @property
    def is_streaming(self) -> bool:
        """Whether the service accepts ``ingest``."""
        return (self._collector is not None or self._refit is not None
                or self._distributed is not None)

    @property
    def is_ready(self) -> bool:
        """Whether a finalized estimator is available for queries."""
        return self._epoch is not None

    @property
    def epoch_id(self) -> int:
        """Id of the published epoch (0 until the first finalize/restore)."""
        epoch = self._epoch
        return epoch.epoch_id if epoch is not None else 0

    def read_epoch(self) -> EstimatorEpoch:
        """The current published read view (lock-free snapshot).

        Callers answering several workloads against the *same* epoch
        hold the returned object and use its answering methods; the
        service may publish newer epochs meanwhile without affecting
        it.  Raises :class:`ServiceError` before the first finalize.
        """
        epoch = self._epoch
        if epoch is None:
            raise ServiceError(
                "service is not ready: ingest reports and re-finalize "
                "(or restore a snapshot) before querying")
        return epoch

    def _publish(self, estimator: RangeQueryMechanism, *,
                 epoch_id: int | None = None) -> None:
        """Build and publish a fresh epoch around ``estimator``.

        The epoch (id, estimator, cache references) is constructed
        completely before the single ``self._epoch`` assignment — the
        linearization point readers observe.  Callers hold ``_lock``
        (or are single-threaded constructors/restores), so epoch ids
        are assigned in publication order.
        """
        if self.plan_cache_entries is not None:
            estimator.set_plan_cache_capacity(self.plan_cache_entries)
        if epoch_id is None:
            epoch_id = self._epoch_counter + 1
        self._epoch_counter = int(epoch_id)
        epoch = EstimatorEpoch(self._epoch_counter, estimator,
                               answer_cache=self._answer_cache)
        self._estimator = estimator
        self._epoch = epoch

    def answer_cache_stats(self) -> dict:
        """Hit/miss/eviction counters of the answer cache."""
        return self._answer_cache.stats()

    def clear_answer_cache(self) -> None:
        """Drop cached answers (benchmarks measure the uncached path)."""
        self._answer_cache.clear()

    def status(self) -> dict:
        """Service health document (what ``GET /healthz`` returns)."""
        with self._lock:
            reference = self._collector or self._estimator
            if self._tier is not None:
                n_attributes = self._tier.n_attributes
                domain_size = self._tier.domain_size
            elif reference is not None:
                n_attributes = reference._n_attributes
                domain_size = reference._domain_size
            elif self._pending_schema is not None:
                n_attributes, domain_size = self._pending_schema
            else:
                n_attributes, domain_size = None, self.domain_size
            return {
                "mechanism": self.mechanism_name,
                "epsilon": self.epsilon,
                "mode": "streaming" if self.is_streaming else "static",
                "ingest_mode": self.ingest_mode,
                "ready": self.is_ready,
                "reports_ingested": self.reports_ingested,
                "reports_since_finalize": self.reports_since_finalize,
                "finalize_count": self.finalize_count,
                "refinalize_every": self.refinalize_every,
                "n_attributes": n_attributes,
                "domain_size": domain_size,
                "ingest_workers": self.ingest_workers,
                "ingest_tier": (self._tier.metrics()
                                if self._tier is not None else None),
                "epoch": self.epoch_id,
                "plan_cache": (self._estimator.plan_cache_stats()
                               if self._estimator is not None else None),
                "answer_cache": self._answer_cache.stats(),
            }

    # ------------------------------------------------------------------
    # Ingest + re-finalize
    # ------------------------------------------------------------------
    def ingest(self, rows, domain_size: int | None = None) -> dict:
        """Feed one batch of user reports into the open collector.

        ``rows`` is a :class:`~repro.datasets.Dataset` or a raw
        ``(n, d)`` integer array/list (then the domain size comes from
        the call, the service default, or earlier batches).  Returns an
        ingest receipt including whether the batch tripped the
        automatic re-finalize policy.
        """
        with self._lock:
            if not self.is_streaming:
                raise ServiceError(
                    "service is static (built from a fitted mechanism); "
                    "ingest needs streaming mode")
            batch = self._as_dataset(rows, domain_size)
            if self._distributed is not None:
                if self._closed:
                    raise ServiceError(
                        "service is closed: its ingest tier was shut down")
                if self._tier is None:
                    if self._distributed["ingest_mode"] == "stream":
                        planning = self.total_users or batch.n_users
                    else:
                        planning = None
                    self._build_tier(batch.n_attributes, batch.domain_size,
                                     planning_users=planning)
                elif (batch.n_attributes != self._tier.n_attributes
                        or batch.domain_size != self._tier.domain_size):
                    raise ServiceError(
                        f"batch shape (d={batch.n_attributes}, "
                        f"c={batch.domain_size}) does not match the ingest "
                        f"tier's schema (d={self._tier.n_attributes}, "
                        f"c={self._tier.domain_size})")
                self._tier.submit(batch.values)
            elif self._refit is not None:
                schema = (batch.n_attributes, batch.domain_size)
                if self._pending_schema is None:
                    self._pending_schema = schema
                elif schema != self._pending_schema:
                    raise ServiceError(
                        f"batch shape (d={schema[0]}, c={schema[1]}) does "
                        f"not match earlier batches (d="
                        f"{self._pending_schema[0]}, "
                        f"c={self._pending_schema[1]})")
                self._pending_rows.append(np.asarray(batch.values,
                                                     dtype=np.int64))
            else:
                self._collector.partial_fit(batch,
                                            total_users=self.total_users)
            self.reports_ingested += batch.n_users
            self.reports_since_finalize += batch.n_users
            refinalized = (self.refinalize_every is not None
                           and self.reports_since_finalize
                           >= self.refinalize_every)
        if refinalized:
            self._refinalize()
        with self._lock:
            return {
                "ingested": batch.n_users,
                "total_reports": self.reports_ingested,
                "reports_since_finalize": self.reports_since_finalize,
                "refinalized": refinalized,
                "ready": self.is_ready,
            }

    def _as_dataset(self, rows, domain_size: int | None) -> Dataset:
        if isinstance(rows, Dataset):
            return rows
        domain_size = domain_size or self.domain_size
        if domain_size is None:
            if self._tier is not None:
                domain_size = self._tier.domain_size
            elif self._collector is not None:
                domain_size = self._collector._domain_size
            elif self._pending_schema is not None:
                domain_size = self._pending_schema[1]
            if domain_size is None:
                raise ServiceError(
                    "domain_size is required for the first raw-row batch "
                    "(pass it per call or at service construction)")
        return Dataset(np.asarray(rows, dtype=np.int64), int(domain_size))

    def refinalize(self) -> dict:
        """Run Phase 2 on the collector's current state; swap the estimator.

        The collector itself stays open — its accumulator state is
        cloned through ``shard_state``/``load_shard_state``, the clone
        is finalized, and the serving estimator is replaced atomically.
        """
        with self._lock:
            if not self.is_streaming:
                raise ServiceError("service is static; nothing to re-finalize")
            if self.reports_ingested == 0:
                raise ServiceError("no reports ingested yet")
        self._refinalize()
        return self.status()

    def _refinalize(self) -> None:
        """Capture → finalize a clone → swap.

        Only the accumulator capture and the estimator swap hold the
        state lock; the Phase-2 pass (or, in refit mode, the full
        ``fit``) itself runs without it, so concurrent queries keep
        answering from the previous estimator instead of stalling.
        Whole re-finalizes are serialized by their own lock so swaps
        land in capture order.
        """
        with self._refinalize_lock:
            if self._distributed is not None:
                with self._lock:
                    tier = self._tier
                    self.reports_since_finalize = 0
                if tier is None:
                    raise ServiceError("no reports ingested yet")
                # flush + fold + Phase 2 run outside the state lock, so
                # queries keep answering from the previous epoch.
                clone = tier.coordinator.merge()
                with self._lock:
                    self._publish(clone)
                    self.finalize_count += 1
                tier.coordinator.record_publication(self.epoch_id)
                return
            if self._refit is not None:
                self._refinalize_refit()
                return
            with self._lock:
                collector = self._collector
                factory = type(collector)
                epsilon = collector.epsilon
                config = collector._snapshot_config()
                state = collector.shard_state()
                self.reports_since_finalize = 0
            clone = factory(epsilon, **config)
            clone.load_shard_state(state)
            clone.finalize()
            with self._lock:
                self._publish(clone)
                self.finalize_count += 1

    def _refinalize_refit(self) -> None:
        """Refit mode: full ``fit()`` on a fresh same-seeded instance.

        Deterministic in (seed, buffered rows): refitting after a
        restart-plus-replay lands on a bitwise-identical estimator —
        including its post-fit RNG stream, so even noise-drawing
        answering paths (HIO/LHIO) match an uninterrupted run.
        """
        with self._lock:
            rows = np.concatenate(self._pending_rows, axis=0)
            domain_size = self._pending_schema[1]
            recipe = self._refit
            self.reports_since_finalize = 0
        clone = recipe["factory"](recipe["epsilon"], seed=recipe["seed"],
                                  **recipe["kwargs"])
        clone.fit(Dataset(rows, domain_size))
        with self._lock:
            self._publish(clone)
            self.finalize_count += 1

    def _build_tier(self, n_attributes: int, domain_size: int, *,
                    planning_users: int | None = None,
                    worker_states: list | None = None,
                    key_base: int = 0) -> None:
        """Start the distributed ingest tier for a now-known schema."""
        recipe = self._distributed
        self._tier = IngestTier(
            recipe["name"], recipe["epsilon"],
            n_workers=recipe["workers"],
            n_attributes=int(n_attributes), domain_size=int(domain_size),
            seed=recipe["seed"], ingest_mode=recipe["ingest_mode"],
            planning_users=planning_users, total_users=self.total_users,
            mechanism_kwargs=recipe["kwargs"],
            worker_states=worker_states, key_base=int(key_base))
        # Remembered so snapshots rebuild workers with the same layout.
        recipe["planning_users"] = planning_users

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, queries: list) -> np.ndarray | list[QueryResult]:
        """Answer a (possibly mixed-kind) workload with the current epoch.

        Pure range workloads return the flat float vector; workloads
        containing other IR kinds return typed results (see
        :meth:`repro.core.RangeQueryMechanism.answer_workload`).
        Lock-free: the published epoch reference is loaded once and the
        whole workload answers against that one finalized estimator.
        """
        return self.read_epoch().answer_workload(queries)

    def query_typed(self, queries: list) -> list[QueryResult]:
        """Answer any workload as typed results, range-only ones included."""
        return self.read_epoch().answer_typed(queries)

    def query_wire(self, objs) -> dict:
        """Answer a JSON-wire workload (what ``POST /query`` serves).

        The response document always carries ``results`` (one typed
        document per query, see :meth:`repro.queries.QueryResult.to_wire`)
        and ``count``; when every result is scalar (range, point, count)
        it additionally carries the flat ``answers`` float list the
        pre-IR API served.
        """
        return self.read_epoch().wire_document(queries_from_wire(objs))

    def query_wire_batch(self, workloads) -> dict:
        """Answer a batch of JSON-wire workloads in one call.

        ``workloads`` is a list of wire workloads (each a list of wire
        queries, exactly what :meth:`query_wire` accepts).  Every
        workload is parsed *before* any answering happens — a malformed
        entry fails the whole batch without partial effects — and all
        workloads are then answered against a single epoch reference
        loaded once, so a batch observes one consistent finalized
        estimator even while re-finalize swaps are landing (and no
        lock is held while it answers).  Returns ``{"count":
        total_queries, "workloads": [per-workload documents]}`` where
        each per-workload document has the :meth:`query_wire` shape.
        """
        if not isinstance(workloads, (list, tuple)):
            raise ValueError("workloads must be a JSON list of query lists")
        parsed = [queries_from_wire(objs) for objs in workloads]
        epoch = self.read_epoch()
        documents = [epoch.wire_document(queries) for queries in parsed]
        return {"count": sum(document["count"] for document in documents),
                "workloads": documents}

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """One JSON document holding estimator + pending collector state."""
        with self._lock:
            collector_state = None
            collector_config = None
            collector_rng = None
            if self._collector is not None:
                collector_config = self._collector._snapshot_config()
                # The RNG state makes a restored service's *future*
                # ingest draws continue the exact same stream.
                collector_rng = self._collector.rng.bit_generator.state
                if self.reports_ingested > 0:
                    collector_state = self._collector.shard_state()
            document = {
                "format": SERVICE_SNAPSHOT_FORMAT,
                "version": SERVICE_SNAPSHOT_VERSION,
                "mechanism": self.mechanism_name,
                "epsilon": self.epsilon,
                "ingest_mode": self.ingest_mode,
                "refinalize_every": self.refinalize_every,
                "total_users": self.total_users,
                "domain_size": self.domain_size,
                "reports_ingested": self.reports_ingested,
                "reports_since_finalize": self.reports_since_finalize,
                "finalize_count": self.finalize_count,
                "epoch_id": self.epoch_id,
                "plan_cache_entries": self.plan_cache_entries,
                "answer_cache_entries": self.answer_cache_entries,
                "collector_config": collector_config,
                "collector_rng": collector_rng,
                "collector": collector_state,
                "estimator": (self._estimator.save_state()
                              if self._estimator is not None else None),
            }
            if self._refit is not None:
                document["refit"] = {
                    "seed": self._refit["seed"],
                    "kwargs": self._refit["kwargs"],
                    "pending_rows": [batch.tolist()
                                     for batch in self._pending_rows],
                    "pending_schema": (list(self._pending_schema)
                                       if self._pending_schema is not None
                                       else None),
                }
            if self._distributed is not None:
                document["distributed"] = self._distributed_state()
            return document

    def _distributed_state(self) -> dict:
        """The snapshot block for a distributed service (lock held).

        Stream tiers capture every worker's shard + RNG state so the
        rebuilt workers resume the exact per-worker streams; refit
        tiers store the reassembled rows, which the restore re-submits
        from key 0 (identical consistent-hash placement).  ``key_base``
        makes post-restore WAL replay route new reports exactly as the
        uninterrupted run would have.
        """
        recipe = self._distributed
        block = {
            "ingest_workers": recipe["workers"],
            "seed": recipe["seed"],
            "kwargs": recipe["kwargs"],
            "planning_users": recipe["planning_users"],
        }
        if self._tier is not None:
            block["schema"] = [self._tier.n_attributes,
                               self._tier.domain_size]
            block["key_base"] = self._tier.next_key
            if recipe["ingest_mode"] == "stream":
                block["worker_states"] = self._tier.capture_worker_states()
            else:
                rows, _ = self._tier.assembled_rows()
                block["pending_rows"] = rows.tolist()
        return block

    @classmethod
    def from_state_dict(cls, state: dict,
                        seed: int | None = None) -> "QueryService":
        """Rebuild a service from :meth:`state_dict` output."""
        check_state_document(state, SERVICE_SNAPSHOT_FORMAT,
                             SERVICE_SNAPSHOT_VERSION)
        estimator = (restore_mechanism(state["estimator"])
                     if state.get("estimator") is not None else None)
        # Absent in pre-epoch snapshots (both then fall back to their
        # defaults, exactly what those services ran with).
        cache_config = {
            "plan_cache_entries": state.get("plan_cache_entries"),
            "answer_cache_entries": state.get("answer_cache_entries"),
        }
        if state.get("distributed") is not None:
            distributed = state["distributed"]
            service = cls(state["mechanism"], float(state["epsilon"]),
                          seed=distributed.get("seed"),
                          ingest_mode=state["ingest_mode"],
                          ingest_workers=int(distributed["ingest_workers"]),
                          refinalize_every=state.get("refinalize_every"),
                          total_users=state.get("total_users"),
                          domain_size=state.get("domain_size"),
                          **cache_config,
                          **dict(distributed.get("kwargs") or {}))
            schema = distributed.get("schema")
            if schema is not None:
                if state["ingest_mode"] == "stream":
                    service._build_tier(
                        int(schema[0]), int(schema[1]),
                        planning_users=distributed.get("planning_users"),
                        worker_states=distributed.get("worker_states"),
                        key_base=int(distributed.get("key_base", 0)))
                else:
                    service._build_tier(int(schema[0]), int(schema[1]))
                    rows = np.asarray(distributed.get("pending_rows") or [],
                                      dtype=np.int64)
                    if rows.size:
                        # Re-submitting from key 0 reproduces the exact
                        # original worker placement (keys are submission
                        # indices), without touching ingest counters.
                        service._tier.submit(rows.reshape(-1, int(schema[0])))
        elif state.get("refit") is not None:
            refit = state["refit"]
            service = cls(state["mechanism"], float(state["epsilon"]),
                          seed=refit.get("seed"), ingest_mode="refit",
                          refinalize_every=state.get("refinalize_every"),
                          total_users=state.get("total_users"),
                          domain_size=state.get("domain_size"),
                          **cache_config,
                          **dict(refit.get("kwargs") or {}))
            service._pending_rows = [np.asarray(batch, dtype=np.int64)
                                     for batch in refit["pending_rows"]]
            schema = refit.get("pending_schema")
            service._pending_schema = tuple(schema) if schema else None
        elif state.get("collector_config") is not None:
            factory = SHARDABLE_MECHANISMS[state["mechanism"]]
            collector = factory(float(state["epsilon"]), seed=seed,
                                **state["collector_config"])
            if state.get("collector") is not None:
                collector.load_shard_state(state["collector"])
            if state.get("collector_rng") is not None:
                collector.rng.bit_generator.state = state["collector_rng"]
            service = cls(collector,
                          refinalize_every=state.get("refinalize_every"),
                          total_users=state.get("total_users"),
                          domain_size=state.get("domain_size"),
                          **cache_config)
        else:
            if estimator is None:
                raise ValueError("snapshot holds neither an estimator nor "
                                 "a collector")
            service = cls(estimator,
                          domain_size=state.get("domain_size"),
                          **cache_config)
        service.reports_ingested = int(state.get("reports_ingested", 0))
        service.reports_since_finalize = int(
            state.get("reports_since_finalize", 0))
        service.finalize_count = int(state.get("finalize_count", 0))
        # Publish the restored estimator as the epoch the snapshot
        # recorded (pre-epoch snapshots fall back to the next local id).
        stored_epoch = state.get("epoch_id")
        if estimator is not None:
            service._publish(estimator,
                             epoch_id=(int(stored_epoch)
                                       if stored_epoch else None))
        elif stored_epoch:
            service._epoch_counter = int(stored_epoch)
        return service

    def save_snapshot(self,
                      store: SnapshotStore | str) -> SnapshotInfo:
        """Write the current :meth:`state_dict` as the store's next version."""
        if not isinstance(store, SnapshotStore):
            store = SnapshotStore(store)
        return store.save(self.state_dict())

    @classmethod
    def from_snapshot(cls, store: SnapshotStore | str,
                      version: int | None = None,
                      seed: int | None = None) -> "QueryService":
        """Restore a service from a stored snapshot (latest by default)."""
        if not isinstance(store, SnapshotStore):
            store = SnapshotStore(store)
        return cls.from_state_dict(store.load(version), seed=seed)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the distributed ingest tier (workers + shared memory).

        No-op for in-process services; the estimator keeps answering
        queries either way, but a closed distributed service no longer
        accepts ingest.
        """
        with self._lock:
            tier, self._tier = self._tier, None
            self._closed = True
        if tier is not None:
            tier.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "streaming" if self.is_streaming else "static"
        return (f"QueryService({self.mechanism_name}, "
                f"epsilon={self.epsilon}, {mode}, "
                f"reports={self.reports_ingested}, "
                f"{'ready' if self.is_ready else 'not ready'})")
