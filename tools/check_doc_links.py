#!/usr/bin/env python3
"""Offline link checker for the markdown documentation.

Verifies that every relative link/image target in the given markdown
files (or all ``*.md`` under given directories) resolves to an existing
file or directory.  External URLs and pure in-page anchors are skipped —
the check must work offline in CI.

Usage: python tools/check_doc_links.py README.md docs
Exit status is non-zero when any link is broken.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) — reference-style links
#: are not used in this repository.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def collect_files(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: Path) -> list[str]:
    errors = []
    for target in LINK_PATTERN.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
    return errors


def main(arguments: list[str]) -> int:
    files = collect_files(arguments or ["README.md", "docs"])
    missing = [str(f) for f in files if not f.exists()]
    errors = [f"no such file: {name}" for name in missing]
    for path in files:
        if path.exists():
            errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(files) - len(missing)
    print(f"checked {checked} markdown file(s): "
          f"{'OK' if not errors else f'{len(errors)} problem(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
