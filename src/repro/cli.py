"""Command-line interface for running reproduction experiments.

Three subcommands mirror how the library is typically used:

``run``
    Evaluate a set of mechanisms once on one configuration and print the
    per-mechanism MAE.
``sweep``
    Vary one configuration field over several values (the shape of every
    figure in the paper) and print the MAE series as a table.
``table2``
    Print the recommended (g1, g2) granularities for a grid of
    (d, lg n, ε) settings — the paper's Table 2.

Examples
--------
python -m repro.cli run --dataset normal --n-users 100000 --epsilon 1.0
python -m repro.cli sweep --parameter epsilon --values 0.2 0.5 1.0 2.0
python -m repro.cli table2 --d 6 --lg-n 6.0
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ExperimentConfig, run_experiment, sweep_parameter
from .experiments.figures import table_2_granularities


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="normal",
                        help="dataset name (ipums, bfive, loan, acs, normal, laplace)")
    parser.add_argument("--n-users", type=int, default=100_000)
    parser.add_argument("--n-attributes", type=int, default=6)
    parser.add_argument("--domain-size", type=int, default=64)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--query-dimension", type=int, default=2)
    parser.add_argument("--volume", type=float, default=0.5)
    parser.add_argument("--n-queries", type=int, default=100)
    parser.add_argument("--n-repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--methods", nargs="+",
                        default=["Uni", "MSW", "CALM", "LHIO", "TDG", "HDG"],
                        help="mechanisms to evaluate (paper names; HDG(g1,g2) supported)")


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset, n_users=args.n_users,
        n_attributes=args.n_attributes, domain_size=args.domain_size,
        epsilon=args.epsilon, query_dimension=args.query_dimension,
        volume=args.volume, n_queries=args.n_queries,
        n_repeats=args.n_repeats, methods=tuple(args.methods), seed=args.seed)


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = run_experiment(config)
    print(f"dataset={config.dataset} n={config.n_users} d={config.n_attributes} "
          f"c={config.domain_size} eps={config.epsilon} "
          f"lambda={config.query_dimension} omega={config.volume}")
    for method in config.methods:
        print(f"  {method:>10}: MAE = {result.methods[method].mae}")
    return 0


def _parse_sweep_values(parameter: str, raw_values: list[str]) -> list:
    integer_fields = {"n_users", "n_attributes", "domain_size",
                      "query_dimension", "n_queries", "n_repeats"}
    if parameter in integer_fields:
        return [int(value) for value in raw_values]
    if parameter == "dataset":
        return list(raw_values)
    return [float(value) for value in raw_values]


def _command_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    values = _parse_sweep_values(args.parameter, args.values)
    sweep = sweep_parameter(config, args.parameter, values)
    print(sweep.format_table())
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    epsilons = args.epsilons or [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    settings = [(args.d, args.lg_n)]
    table = table_2_granularities(epsilons=epsilons, settings=settings,
                                  domain_size=args.domain_size)
    print(f"d={args.d}, lg(n)={args.lg_n}, c={args.domain_size}")
    for epsilon in epsilons:
        g1, g2 = table[(args.d, args.lg_n, epsilon)]
        print(f"  eps={epsilon:<4}: g1={g1:>3}  g2={g2:>3}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Answering Multi-Dimensional Range "
                    "Queries under Local Differential Privacy' (VLDB 2020)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="evaluate mechanisms once")
    _add_config_arguments(run_parser)
    run_parser.set_defaults(handler=_command_run)

    sweep_parser = subparsers.add_parser("sweep", help="sweep one parameter")
    _add_config_arguments(sweep_parser)
    sweep_parser.add_argument("--parameter", default="epsilon",
                              help="configuration field to vary")
    sweep_parser.add_argument("--values", nargs="+", required=True,
                              help="values to evaluate")
    sweep_parser.set_defaults(handler=_command_sweep)

    table_parser = subparsers.add_parser("table2",
                                         help="print recommended granularities")
    table_parser.add_argument("--d", type=int, default=6)
    table_parser.add_argument("--lg-n", type=float, default=6.0)
    table_parser.add_argument("--domain-size", type=int, default=64)
    table_parser.add_argument("--epsilons", type=float, nargs="+")
    table_parser.set_defaults(handler=_command_table2)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
