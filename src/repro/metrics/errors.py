"""Accuracy metrics used in the evaluation.

The paper reports the Mean Absolute Error (MAE) over a workload of range
queries, and the appendix additionally inspects the distribution of
per-query absolute errors (Figures 9-10).  Both are provided here along
with small helpers for aggregating repeated runs.

Typed IR workloads (:mod:`repro.queries`) are scored through
:func:`result_error` / :func:`workload_result_errors`, which reduce every
result kind to one frequency-scale error per query so mixed workloads
aggregate into the same MAE the paper reports, and
:func:`per_kind_errors` breaks a mixed workload's errors down by query
kind.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..queries import (DistributionResult, QueryResult, ScalarResult,
                       TopKResult, query_kind)


def absolute_errors(estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """Per-query absolute error ``|f_q - f̄_q|``."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ValueError(
            f"estimates shape {estimates.shape} != truths shape {truths.shape}")
    return np.abs(estimates - truths)


def mean_absolute_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """MAE over a query workload (the paper's headline metric)."""
    return float(absolute_errors(estimates, truths).mean())


def mean_squared_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """MSE over a query workload (used in the error analysis discussion)."""
    errors = absolute_errors(estimates, truths)
    return float((errors ** 2).mean())


@dataclass
class RepeatedRunSummary:
    """Mean and standard deviation of a metric across repeated runs."""

    mean: float
    std: float
    n_runs: int

    @classmethod
    def from_values(cls, values: list[float]) -> "RepeatedRunSummary":
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            raise ValueError("need at least one run")
        return cls(mean=float(array.mean()),
                   std=float(array.std(ddof=0)),
                   n_runs=int(array.size))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.5f} ± {self.std:.5f} (n={self.n_runs})"


def error_histogram(errors: np.ndarray, n_bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-query errors (Figures 9-10 style)."""
    errors = np.asarray(errors, dtype=float)
    counts, edges = np.histogram(errors, bins=n_bins)
    return counts, edges


# ----------------------------------------------------------------------
# Typed-result scoring (mixed IR workloads)
# ----------------------------------------------------------------------
def result_error(estimate: QueryResult, truth: QueryResult) -> float:
    """One frequency-scale error between a typed estimate and its truth.

    Every kind reduces to the same [0, 1]-ish frequency scale so mixed
    workloads aggregate into one MAE:

    * range / point — plain absolute error of the scalar;
    * count — absolute error divided by the truth's population (the
      count error re-expressed as a frequency error);
    * marginal — mean absolute per-cell error over the full table;
    * top-k — mean absolute error of the estimated top-k frequencies
      against the *true* frequencies of the selected cells (requires the
      truth side to carry the full table, which
      :func:`repro.queries.evaluate_query` always provides).
    """
    if type(estimate) is not type(truth):
        raise TypeError(
            f"cannot score a {type(estimate).__name__} against a "
            f"{type(truth).__name__}")
    estimate_kind = query_kind(estimate.query)
    truth_kind = query_kind(truth.query)
    if estimate_kind != truth_kind:
        # Range and count both produce ScalarResults; scoring one
        # against the other would silently mis-scale the error.
        raise TypeError(
            f"cannot score a {estimate_kind} estimate against a "
            f"{truth_kind} truth (misaligned workloads?)")
    if isinstance(estimate, ScalarResult):
        error = abs(float(estimate.value) - float(truth.value))
        if truth.population is not None:
            error /= float(truth.population)
        return error
    if isinstance(estimate, DistributionResult):
        if estimate.values.shape != truth.values.shape:
            raise ValueError(
                f"marginal shapes differ: {estimate.values.shape} vs "
                f"{truth.values.shape}")
        return float(np.abs(estimate.values - truth.values).mean())
    if isinstance(estimate, TopKResult):
        if truth.distribution is None:
            raise ValueError(
                "scoring a top-k estimate needs the truth's full marginal "
                "table (TopKResult.distribution)")
        true_values = np.array([truth.distribution[cell]
                                for cell in estimate.cells])
        return float(np.abs(estimate.values - true_values).mean())
    raise TypeError(f"cannot score {type(estimate).__name__}")


def workload_result_errors(estimates: list[QueryResult],
                           truths: list[QueryResult]) -> np.ndarray:
    """Per-query errors of a typed workload (one value per query)."""
    if len(estimates) != len(truths):
        raise ValueError(
            f"{len(estimates)} estimates but {len(truths)} truths")
    return np.array([result_error(estimate, truth)
                     for estimate, truth in zip(estimates, truths)])


def per_kind_errors(queries: list, errors: np.ndarray) -> dict[str, float]:
    """Mean error per query kind of a mixed workload.

    ``queries`` and ``errors`` are aligned (one error per query, e.g.
    from :func:`workload_result_errors`); the result maps each kind
    present in the workload to the mean of its queries' errors.
    """
    errors = np.asarray(errors, dtype=float)
    if len(queries) != errors.shape[0]:
        raise ValueError(
            f"{len(queries)} queries but {errors.shape[0]} errors")
    by_kind: dict[str, list[float]] = {}
    for query, error in zip(queries, errors):
        by_kind.setdefault(query_kind(query), []).append(float(error))
    return {kind: float(np.mean(values)) for kind, values in by_kind.items()}
