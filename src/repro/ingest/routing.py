"""Consistent-hash routing of report keys onto collector workers.

The ingest tier assigns every report a *key* (its global submission
index) and routes it to one of ``n_workers`` collector processes.  The
router is a classic consistent-hash ring with virtual nodes: each
worker owns ``replicas`` pseudo-random points on a 64-bit ring, and a
key goes to the owner of the first ring point at or after the key's
hash (wrapping around).

Two properties matter here and are pinned by ``tests/test_ingest_routing.py``:

* **Stability** — assignment is a pure function of ``(key, seed,
  n_workers, replicas)``.  The hash is an explicit splitmix64-style
  mixer, *not* Python's builtin ``hash`` (which is salted per process
  and would break cross-process and cross-restart determinism).
* **Minimal movement** — growing the ring from ``N`` to ``N + 1``
  workers leaves existing workers' ring points untouched, so only the
  keys whose successor point belongs to the new worker move:
  ``≈ 1/(N+1)`` of the key space in expectation.
"""

from __future__ import annotations

import numpy as np

#: 64-bit golden-ratio increment used by the splitmix64 mixer.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
#: Salt separating the key-hash stream from the ring-point stream.
_KEY_STREAM = np.uint64(0xA5A5A5A5A5A5A5A5)


def mix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finalizer over a uint64 array.

    Deterministic across processes and Python versions; arithmetic
    wraps modulo 2^64 (NumPy unsigned overflow semantics).
    """
    z = np.asarray(values, dtype=np.uint64) + _GOLDEN
    z = (z ^ (z >> np.uint64(30))) * _MIX_1
    z = (z ^ (z >> np.uint64(27))) * _MIX_2
    return z ^ (z >> np.uint64(31))


class ConsistentHashRouter:
    """Maps integer report keys onto ``n_workers`` via a hash ring.

    Parameters
    ----------
    n_workers:
        Number of collector workers (ring members).
    replicas:
        Virtual nodes per worker.  More replicas smooth the load split
        at the cost of a larger (still tiny) ring.
    seed:
        Ring salt.  Routers built with the same ``(n_workers,
        replicas, seed)`` agree on every assignment, in any process.
    """

    def __init__(self, n_workers: int, *, replicas: int = 64, seed: int = 0):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_workers = int(n_workers)
        self.replicas = int(replicas)
        self.seed = int(seed)
        seed_word = np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF)
        self._key_salt = mix64(np.array([seed_word ^ _KEY_STREAM]))[0]
        owners = np.repeat(np.arange(self.n_workers, dtype=np.uint64),
                           self.replicas)
        replica_ids = np.tile(np.arange(self.replicas, dtype=np.uint64),
                              self.n_workers)
        ring_salt = mix64(np.array([seed_word]))[0]
        points = mix64(mix64(owners + ring_salt) + replica_ids * _GOLDEN)
        order = np.argsort(points, kind="stable")
        self._points = points[order]
        self._owners = owners[order].astype(np.int64)

    def assign(self, keys) -> np.ndarray:
        """Worker index for each key (vectorised ring lookup)."""
        keys = np.asarray(keys, dtype=np.uint64)
        hashes = mix64(keys + self._key_salt)
        # First ring point at or after the hash, wrapping past the top.
        positions = np.searchsorted(self._points, hashes, side="left")
        positions[positions == self._points.size] = 0
        return self._owners[positions]

    def worker_for(self, key: int) -> int:
        """Worker index for one key."""
        return int(self.assign(np.array([key], dtype=np.uint64))[0])

    def split(self, keys) -> dict[int, np.ndarray]:
        """Positions of ``keys`` grouped by assigned worker.

        Returns ``{worker: index array into keys}`` with each index
        array in ascending order, so per-worker sub-batches preserve
        the submission order of their rows.
        """
        owners = self.assign(keys)
        return {worker: np.flatnonzero(owners == worker)
                for worker in range(self.n_workers)
                if bool(np.any(owners == worker))}
