"""Serving quickstart: ingest → snapshot → restore → query.

This example drives the online serving subsystem (``repro.serving``)
end to end against an in-process service:

1. start a streaming :class:`~repro.serving.QueryService` and ingest
   privatized report batches through the shard ``partial_fit`` path,
2. re-finalize so the service answers from the accumulated reports,
3. answer a workload over the JSON-over-HTTP API (the same
   ``/healthz``, ``/ingest``, ``/query``, ``/snapshot`` surface that
   ``repro serve`` exposes),
4. write a versioned snapshot, restore it into a *second* service, and
   verify the restored answers are bitwise identical — the contract
   the snapshot layer is property-tested on.

Run with:  python examples/serving_quickstart.py

It doubles as a CI smoke: any drift between the live and restored
answers raises.
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request

import numpy as np

from repro import QueryService, WorkloadGenerator, make_dataset
from repro.serving import SnapshotStore, build_server, query_to_wire


def http_json(port: int, path: str, payload: dict | None = None) -> dict:
    """One JSON request against the in-process server."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                     data=data)
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A streaming service and three batches of arriving reports.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    dataset = make_dataset("normal", n_users=6_000, n_attributes=3,
                           domain_size=16, rng=rng)
    service = QueryService("HDG", epsilon=1.0, seed=0, domain_size=16,
                           total_users=dataset.n_users,
                           refinalize_every=4_000)
    server = build_server(service, port=0)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"service up on http://127.0.0.1:{port}")
    print(f"healthz: {http_json(port, '/healthz')}")

    for index in range(3):
        rows = dataset.values[index * 2_000:(index + 1) * 2_000]
        receipt = http_json(port, "/ingest", {"rows": rows.tolist()})
        print(f"ingested batch {index}: {receipt}")

    # Batch 1 tripped the refinalize-every-4000 policy; make the last
    # 2000 reports visible too.
    status = http_json(port, "/refinalize", {})
    print(f"re-finalized: {status['finalize_count']} finalizes over "
          f"{status['reports_ingested']} reports")

    # ------------------------------------------------------------------
    # 2. Answer a mixed workload over HTTP.
    # ------------------------------------------------------------------
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(1))
    workload = (generator.random_workload(10, 2, 0.5)
                + generator.random_workload(5, 3, 0.5))
    wire = [query_to_wire(query) for query in workload]
    live_answers = http_json(port, "/query", {"queries": wire})["answers"]
    print(f"answered {len(live_answers)} queries; first three: "
          f"{[round(answer, 4) for answer in live_answers[:3]]}")

    # ------------------------------------------------------------------
    # 3. Snapshot, restore into a second service, re-query.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        store = SnapshotStore(directory)
        info = store.save(service.state_dict())
        print(f"wrote snapshot version {info.version} -> {info.path}")

        restored = QueryService.from_snapshot(store)
        restored_answers = restored.query(workload)
        print(f"restored service: {restored.status()}")

        if not np.array_equal(np.asarray(live_answers), restored_answers):
            raise AssertionError(
                "restored answers drifted from the live service's")
        print("restored answers are bitwise identical to the live ones")

    server.shutdown()
    server.server_close()
    print("done")


if __name__ == "__main__":
    main()
