"""Tests for the parallel experiment executor and the on-disk result cache."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import (ExperimentConfig, ResultCache, cell_key,
                               run_experiment, sweep_parameter)
from repro.experiments import cache as cache_module
from repro.experiments.executor import chunk_indices
from repro.queries import WorkloadGenerator

CONFIG = ExperimentConfig(dataset="normal", n_users=4_000, n_attributes=3,
                          domain_size=16, epsilon=1.0, query_dimension=2,
                          volume=0.5, n_queries=12, n_repeats=2,
                          methods=("Uni", "TDG", "HDG"), seed=3)

SWEEP_VALUES = [0.5, 1.0]


def module_level_factory(config, dataset, repeat):
    """Picklable workload factory for the parallel-execution tests."""
    generator = WorkloadGenerator(config.n_attributes, config.domain_size,
                                  rng=np.random.default_rng(config.seed + repeat))
    return generator.random_workload(7, 2, 0.5)


def variable_length_factory(config, dataset, repeat):
    """Returns a different workload length per repetition (invalid)."""
    generator = WorkloadGenerator(config.n_attributes, config.domain_size,
                                  rng=np.random.default_rng(repeat))
    return generator.random_workload(5 + repeat, 2, 0.5)


def assert_results_identical(first, second):
    assert set(first.methods) == set(second.methods)
    for method in first.methods:
        assert first.methods[method].mae == second.methods[method].mae
        assert np.array_equal(first.methods[method].per_query_errors,
                              second.methods[method].per_query_errors)


# ----------------------------------------------------------------------
# Parallel == sequential equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_jobs", [1, 2, 4])
def test_run_experiment_parallel_equals_sequential(n_jobs):
    sequential = run_experiment(CONFIG)
    parallel = run_experiment(CONFIG.with_overrides(n_jobs=n_jobs))
    assert_results_identical(sequential, parallel)


@pytest.mark.parametrize("n_jobs", [2, 4])
def test_sweep_parallel_equals_sequential(n_jobs):
    sequential = sweep_parameter(CONFIG, "epsilon", SWEEP_VALUES)
    parallel = sweep_parameter(CONFIG.with_overrides(n_jobs=n_jobs),
                               "epsilon", SWEEP_VALUES)
    assert sequential.series() == parallel.series()
    for left, right in zip(sequential.results, parallel.results):
        assert_results_identical(left, right)


@pytest.mark.parametrize("n_tasks,n_chunks", [
    (0, 4), (1, 4), (5, 1), (6, 2), (7, 3), (12, 4), (3, 8),
])
def test_chunk_indices_partition_exactly(n_tasks, n_chunks):
    chunks = chunk_indices(n_tasks, n_chunks)
    # Contiguous, disjoint, covering: concatenation is range(n_tasks).
    flattened = [index for chunk in chunks for index in chunk]
    assert flattened == list(range(n_tasks))
    assert len(chunks) == max(1, min(n_chunks, n_tasks))
    sizes = [len(chunk) for chunk in chunks]
    assert max(sizes) - min(sizes) <= 1  # near-equal shares


def test_chunked_parallel_equals_sequential_with_cache(tmp_path, monkeypatch):
    # The chunked dispatch path (one task per worker) must land the
    # exact cells the sequential loop produces, and persist every one.
    # Force the pool path regardless of the test machine's core count.
    from repro.experiments import executor as executor_module

    monkeypatch.setattr(executor_module, "_available_cpus", lambda: 4)
    sequential = run_experiment(CONFIG)
    cache = ResultCache(tmp_path)
    chunked = run_experiment(CONFIG.with_overrides(n_jobs=4), cache=cache)
    assert_results_identical(sequential, chunked)
    expected_cells = CONFIG.n_repeats * len(CONFIG.methods)
    assert cache.misses == expected_cells
    assert len(cache) == expected_cells
    # Resuming from the chunk-populated cache is hit-only and bit-equal.
    resumed_cache = ResultCache(tmp_path)
    resumed = run_experiment(CONFIG, cache=resumed_cache)
    assert resumed_cache.hits == expected_cells
    assert resumed_cache.misses == 0
    assert_results_identical(sequential, resumed)


def test_worker_request_beyond_cores_runs_in_process(monkeypatch):
    # On a single-core machine extra forked workers only add overhead,
    # so n_jobs=4 must cap to the in-process path — bit-identically.
    from repro.experiments import executor as executor_module

    monkeypatch.setattr(executor_module, "_available_cpus", lambda: 1)

    def no_pool(*args, **kwargs):
        raise AssertionError("capped request must not fork a process pool")

    monkeypatch.setattr(executor_module.concurrent.futures,
                        "ProcessPoolExecutor", no_pool)
    capped = run_experiment(CONFIG.with_overrides(n_jobs=4))
    assert_results_identical(run_experiment(CONFIG), capped)


def test_parallel_with_picklable_workload_factory():
    sequential = run_experiment(CONFIG, workload_factory=module_level_factory)
    parallel = run_experiment(CONFIG.with_overrides(n_jobs=2),
                              workload_factory=module_level_factory)
    assert_results_identical(sequential, parallel)


def test_unpicklable_workload_factory_falls_back_with_warning():
    captured = []

    def closure_factory(config, dataset, repeat):
        captured.append(repeat)
        return module_level_factory(config, dataset, repeat)

    with pytest.warns(UserWarning, match="not picklable"):
        result = run_experiment(CONFIG.with_overrides(n_jobs=2),
                                workload_factory=closure_factory)
    assert sorted(set(captured)) == [0, 1]
    assert_results_identical(run_experiment(CONFIG,
                                            workload_factory=module_level_factory),
                             result)


# ----------------------------------------------------------------------
# Satellite: equal workload lengths across repetitions
# ----------------------------------------------------------------------
def test_variable_length_workloads_raise_clear_error():
    with pytest.raises(ValueError, match="different lengths across"):
        run_experiment(CONFIG.with_overrides(methods=("Uni",)),
                       workload_factory=variable_length_factory)


def test_equal_length_workload_factory_still_accepted():
    result = run_experiment(CONFIG.with_overrides(methods=("Uni",)),
                            workload_factory=module_level_factory)
    assert result.methods["Uni"].per_query_errors.shape == (7,)


# ----------------------------------------------------------------------
# Result cache: round trip, hit/miss accounting, invalidation
# ----------------------------------------------------------------------
def test_cache_round_trip_and_all_hits_on_rerun(tmp_path):
    first_cache = ResultCache(tmp_path)
    first = sweep_parameter(CONFIG, "epsilon", SWEEP_VALUES, cache=first_cache)
    expected_cells = (len(SWEEP_VALUES) * CONFIG.n_repeats
                      * len(CONFIG.methods))
    assert first_cache.hits == 0
    assert first_cache.misses == expected_cells
    assert len(first_cache) == expected_cells

    second_cache = ResultCache(tmp_path)
    second = sweep_parameter(CONFIG, "epsilon", SWEEP_VALUES,
                             cache=second_cache)
    assert second_cache.misses == 0
    assert second_cache.hits == expected_cells
    for left, right in zip(first.results, second.results):
        assert_results_identical(left, right)


def test_cached_results_equal_uncached(tmp_path):
    cache = ResultCache(tmp_path)
    sweep_parameter(CONFIG, "epsilon", SWEEP_VALUES, cache=cache)
    cached = sweep_parameter(CONFIG, "epsilon", SWEEP_VALUES,
                             cache=ResultCache(tmp_path))
    uncached = sweep_parameter(CONFIG, "epsilon", SWEEP_VALUES)
    for left, right in zip(cached.results, uncached.results):
        assert_results_identical(left, right)


def test_cache_invalidation_on_config_change(tmp_path):
    run_experiment(CONFIG, cache=ResultCache(tmp_path))
    changed = ResultCache(tmp_path)
    run_experiment(CONFIG.with_overrides(epsilon=2.0), cache=changed)
    assert changed.hits == 0
    assert changed.misses == CONFIG.n_repeats * len(CONFIG.methods)


def test_cache_reused_when_repetitions_grow(tmp_path):
    run_experiment(CONFIG, cache=ResultCache(tmp_path))
    grown = ResultCache(tmp_path)
    run_experiment(CONFIG.with_overrides(n_repeats=3), cache=grown)
    assert grown.hits == 2 * len(CONFIG.methods)
    assert grown.misses == len(CONFIG.methods)


def test_cache_keys_are_stable_and_method_sensitive():
    key = cell_key(CONFIG, 0, "TDG")
    assert key == cell_key(CONFIG, 0, "TDG")
    assert key != cell_key(CONFIG, 1, "TDG")
    assert key != cell_key(CONFIG, 0, "HDG")
    assert key != cell_key(CONFIG.with_overrides(epsilon=0.5), 0, "TDG")
    # Execution-only knobs do not invalidate.
    assert key == cell_key(CONFIG.with_overrides(n_jobs=4), 0, "TDG")
    assert key == cell_key(CONFIG.with_overrides(n_repeats=7), 0, "TDG")


def test_corrupt_cache_entry_counts_as_miss_and_is_repaired(tmp_path):
    cache = ResultCache(tmp_path)
    run_experiment(CONFIG.with_overrides(methods=("Uni",), n_repeats=1),
                   cache=cache)
    [entry] = list(tmp_path.glob("*.json"))
    entry.write_text("{not json")
    repaired = ResultCache(tmp_path)
    run_experiment(CONFIG.with_overrides(methods=("Uni",), n_repeats=1),
                   cache=repaired)
    assert repaired.misses == 1
    json.loads(entry.read_text())  # repaired entry is valid again


def test_interrupted_run_keeps_completed_cells(tmp_path, monkeypatch):
    from repro.experiments import executor as executor_module

    real_evaluate = executor_module.evaluate_cell
    calls = []

    def failing_evaluate(*args, **kwargs):
        if len(calls) == 2:
            raise KeyboardInterrupt
        calls.append(args)
        return real_evaluate(*args, **kwargs)

    monkeypatch.setattr(executor_module, "evaluate_cell", failing_evaluate)
    interrupted = ResultCache(tmp_path)
    with pytest.raises(KeyboardInterrupt):
        run_experiment(CONFIG.with_overrides(n_repeats=1), cache=interrupted)
    # The two cells finished before the interruption were persisted.
    assert len(interrupted) == 2

    monkeypatch.setattr(executor_module, "evaluate_cell", real_evaluate)
    resumed = ResultCache(tmp_path)
    result = run_experiment(CONFIG.with_overrides(n_repeats=1), cache=resumed)
    assert resumed.hits == 2 and resumed.misses == 1
    assert_results_identical(result,
                             run_experiment(CONFIG.with_overrides(n_repeats=1)))


def test_cache_ignored_with_workload_factory(tmp_path):
    cache = ResultCache(tmp_path)
    run_experiment(CONFIG.with_overrides(methods=("Uni",), n_repeats=1),
                   workload_factory=module_level_factory, cache=cache)
    assert cache.hits == 0 and cache.misses == 0
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Satellite: dataset/workload memoization within a sweep
# ----------------------------------------------------------------------
def test_epsilon_sweep_builds_dataset_once_per_repeat(monkeypatch):
    cache_module.clear_memos()
    calls = []
    real_build = cache_module.build_dataset

    def counting_build(config, repeat):
        calls.append(repeat)
        return real_build(config, repeat)

    monkeypatch.setattr(cache_module, "build_dataset", counting_build)
    sweep_parameter(CONFIG.with_overrides(methods=("Uni",)), "epsilon",
                    [0.4, 0.8, 1.6])
    # One dataset per repetition, shared across all three epsilon points.
    assert sorted(calls) == [0, 1]
    cache_module.clear_memos()


def test_domain_sweep_regenerates_dataset_per_point(monkeypatch):
    cache_module.clear_memos()
    calls = []
    real_build = cache_module.build_dataset

    def counting_build(config, repeat):
        calls.append((config.domain_size, repeat))
        return real_build(config, repeat)

    monkeypatch.setattr(cache_module, "build_dataset", counting_build)
    sweep_parameter(CONFIG.with_overrides(methods=("Uni",), n_repeats=1),
                    "domain_size", [16, 32])
    assert sorted(calls) == [(16, 0), (32, 0)]
    cache_module.clear_memos()


def test_memoized_dataset_is_identical_to_fresh_build():
    cache_module.clear_memos()
    memoized = cache_module.memoized_dataset(CONFIG, 0)
    again = cache_module.memoized_dataset(CONFIG, 0)
    assert memoized is again
    fresh = cache_module.build_dataset(CONFIG, 0)
    assert np.array_equal(memoized.values, fresh.values)
    cache_module.clear_memos()
