"""Query model: typed IR, workload generation, planning and exact answering.

The package is the logical query layer of the library:

:mod:`repro.queries.range_query`
    The paper's λ-D range query (:class:`RangeQuery`).
:mod:`repro.queries.ir`
    The typed IR extending it — :class:`MarginalQuery`,
    :class:`PointQuery`, :class:`PredicateCountQuery`,
    :class:`TopKQuery` — plus the typed result classes.
:mod:`repro.queries.planner`
    :class:`QueryPlanner`, which lowers every IR kind onto range
    primitives so all mechanisms answer mixed workloads through one
    stack.
:mod:`repro.queries.compiler`
    :class:`CompiledPlan` and :class:`PlanCache` — a lowered plan
    frozen into fused NumPy index arrays (grouped gathers in, one
    vectorised reassembly out) and the bounded LRU that reuses
    compiled plans across requests.
:mod:`repro.queries.workload`
    Random/exhaustive/mixed workload generation.
:mod:`repro.queries.ground_truth`
    Exact (non-private) answers used as the evaluation baseline.
"""

from .compiler import (CompiledPlan, PlanCache, plan_cache_key,
                       workload_fingerprint)
from .ground_truth import (answer_query, answer_query_from_joint,
                           answer_workload, evaluate_query, evaluate_workload)
from .ir import (QUERY_KINDS, DistributionResult, MarginalQuery, PointQuery,
                 PredicateCountQuery, Query, QueryResult, ScalarResult,
                 TopKQuery, TopKResult, query_kind, validate_query_kinds)
from .planner import (ALL_QUERY_KINDS, LoweredQuery, QueryPlan, QueryPlanner,
                      top_k_cells)
from .range_query import Predicate, RangeQuery
from .workload import WorkloadGenerator

__all__ = [
    "ALL_QUERY_KINDS",
    "CompiledPlan",
    "DistributionResult",
    "LoweredQuery",
    "MarginalQuery",
    "PlanCache",
    "PointQuery",
    "Predicate",
    "PredicateCountQuery",
    "QUERY_KINDS",
    "Query",
    "QueryPlan",
    "QueryPlanner",
    "QueryResult",
    "RangeQuery",
    "ScalarResult",
    "TopKQuery",
    "TopKResult",
    "WorkloadGenerator",
    "answer_query",
    "answer_query_from_joint",
    "answer_workload",
    "evaluate_query",
    "evaluate_workload",
    "plan_cache_key",
    "query_kind",
    "top_k_cells",
    "validate_query_kinds",
    "workload_fingerprint",
]
