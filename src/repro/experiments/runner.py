"""Experiment runner: build mechanisms, run configurations, sweep parameters.

The runner turns an :class:`~repro.experiments.config.ExperimentConfig`
into the numbers the paper plots: for every mechanism, the Mean Absolute
Error over a random query workload, averaged over repetitions.  Parameter
sweeps (the x-axes of the figures) reuse the same machinery by overriding
one field per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..baselines import CALM, HIO, LHIO, MSW, Uniform
from ..core import HDG, IHDG, ITDG, TDG, RangeQueryMechanism
from ..datasets import Dataset, make_dataset
from ..metrics import RepeatedRunSummary, absolute_errors, mean_absolute_error
from ..pipeline import parallel_fit, shard_seed
from ..queries import RangeQuery, WorkloadGenerator, answer_workload
from .config import ExperimentConfig

#: Registry of mechanism constructors keyed by the names used in the paper.
MECHANISM_FACTORIES: dict[str, Callable[..., RangeQueryMechanism]] = {
    "Uni": Uniform,
    "MSW": MSW,
    "CALM": CALM,
    "HIO": HIO,
    "LHIO": LHIO,
    "TDG": TDG,
    "HDG": HDG,
    "ITDG": ITDG,
    "IHDG": IHDG,
}


def build_mechanism(name: str, epsilon: float, seed: int | None = None,
                    **kwargs) -> RangeQueryMechanism:
    """Instantiate a mechanism by its paper name.

    Names of the form ``"HDG(g1,g2)"`` build HDG with explicit
    granularities (the guideline-verification experiments, Figures 7/16).
    """
    if name.startswith("HDG(") and name.endswith(")"):
        inner = name[len("HDG("):-1]
        g1_str, g2_str = inner.split(",")
        kwargs = dict(kwargs)
        kwargs["granularities"] = (int(g1_str), int(g2_str))
        return HDG(epsilon, seed=seed, **kwargs)
    try:
        factory = MECHANISM_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; known: {sorted(MECHANISM_FACTORIES)}"
        ) from None
    return factory(epsilon, seed=seed, **kwargs)


@dataclass
class MethodResult:
    """Per-mechanism outcome of one experiment configuration."""

    method: str
    mae: RepeatedRunSummary
    per_query_errors: np.ndarray


@dataclass
class ExperimentResult:
    """All mechanisms' outcomes for one configuration."""

    config: ExperimentConfig
    methods: dict[str, MethodResult] = field(default_factory=dict)

    def mae_of(self, method: str) -> float:
        return self.methods[method].mae.mean


def _prepare_dataset(config: ExperimentConfig, repeat: int) -> Dataset:
    rng = np.random.default_rng(config.seed + 1_000_003 * repeat)
    return make_dataset(config.dataset, config.n_users, config.n_attributes,
                        config.domain_size, rng=rng, **config.dataset_kwargs)


def _fit_sharded(method: str, method_seed: int, kwargs: dict[str, Any],
                 dataset: Dataset, config: ExperimentConfig) -> RangeQueryMechanism:
    """Collect a shardable mechanism over n_shards parallel user shards."""
    def factory(shard_index: int) -> RangeQueryMechanism:
        return build_mechanism(method, config.epsilon,
                               seed=shard_seed(method_seed, shard_index),
                               **kwargs)

    return parallel_fit(factory, dataset, n_shards=config.n_shards,
                        max_workers=config.shard_workers)


def _prepare_workload(config: ExperimentConfig, repeat: int) -> list[RangeQuery]:
    rng = np.random.default_rng(config.seed + 7_000_003 * repeat + 17)
    generator = WorkloadGenerator(config.n_attributes, config.domain_size, rng=rng)
    return generator.random_workload(config.n_queries, config.query_dimension,
                                     config.volume)


def run_experiment(config: ExperimentConfig,
                   workload_factory: Callable[[ExperimentConfig, Dataset, int],
                                              list[RangeQuery]] | None = None
                   ) -> ExperimentResult:
    """Run one configuration: every mechanism on the same data and workload.

    Parameters
    ----------
    config:
        The experiment point to evaluate.
    workload_factory:
        Optional override producing the query workload from
        ``(config, dataset, repeat)``; used by the appendix experiments
        that need exhaustive or count-conditioned workloads instead of the
        default random one.
    """
    config.validate()
    result = ExperimentResult(config=config)
    per_method_maes: dict[str, list[float]] = {m: [] for m in config.methods}
    per_method_errors: dict[str, list[np.ndarray]] = {m: [] for m in config.methods}

    for repeat in range(config.n_repeats):
        dataset = _prepare_dataset(config, repeat)
        if workload_factory is None:
            queries = _prepare_workload(config, repeat)
        else:
            queries = workload_factory(config, dataset, repeat)
        truths = answer_workload(dataset, queries)
        for position, method in enumerate(config.methods):
            kwargs: dict[str, Any] = dict(config.mechanism_kwargs.get(method, {}))
            method_seed = config.seed + 31 * repeat + position
            mechanism = build_mechanism(method, config.epsilon,
                                        seed=method_seed, **kwargs)
            if config.n_shards > 1 and mechanism.supports_sharding:
                mechanism = _fit_sharded(method, method_seed, kwargs,
                                         dataset, config)
            else:
                mechanism.fit(dataset)
            mechanism.use_legacy_answering = config.query_engine == "legacy"
            estimates = mechanism.answer_workload(queries)
            per_method_maes[method].append(mean_absolute_error(estimates, truths))
            per_method_errors[method].append(absolute_errors(estimates, truths))

    for method in config.methods:
        result.methods[method] = MethodResult(
            method=method,
            mae=RepeatedRunSummary.from_values(per_method_maes[method]),
            per_query_errors=np.mean(np.stack(per_method_errors[method]), axis=0),
        )
    return result


@dataclass
class SweepResult:
    """Results of varying one configuration field over several values."""

    parameter: str
    values: list[Any]
    results: list[ExperimentResult]

    def series(self) -> dict[str, list[float]]:
        """Per-method MAE series indexed like ``values`` (the plot lines)."""
        methods = self.results[0].config.methods if self.results else ()
        return {method: [result.mae_of(method) for result in self.results]
                for method in methods}

    def format_table(self, float_format: str = "{:.5f}") -> str:
        """Human-readable table: one row per method, one column per value."""
        series = self.series()
        header = [self.parameter] + [str(v) for v in self.values]
        rows = [header]
        for method, maes in series.items():
            rows.append([method] + [float_format.format(m) for m in maes])
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for row in rows:
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
        return "\n".join(lines)


def sweep_parameter(base_config: ExperimentConfig, parameter: str,
                    values: list[Any],
                    config_transform: Callable[[ExperimentConfig, Any],
                                               ExperimentConfig] | None = None,
                    workload_factory=None) -> SweepResult:
    """Evaluate ``base_config`` at each value of one field.

    ``config_transform`` may be supplied for sweeps that touch more than a
    single field (e.g. varying the covariance means changing
    ``dataset_kwargs``); by default the named field is simply replaced.
    """
    results = []
    for value in values:
        if config_transform is not None:
            config = config_transform(base_config, value)
        else:
            config = base_config.with_overrides(**{parameter: value})
        results.append(run_experiment(config, workload_factory=workload_factory))
    return SweepResult(parameter=parameter, values=list(values), results=results)
