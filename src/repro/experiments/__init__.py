"""Experiment harness: configs, runner and per-figure reproduction drivers."""

from .config import (DEFAULT_METHODS, METHODS_WITHOUT_HIO, ExperimentConfig)
from .runner import (MECHANISM_FACTORIES, ExperimentResult, MethodResult,
                     SweepResult, build_mechanism, run_experiment,
                     sweep_parameter)
from . import appendix, figures

__all__ = [
    "DEFAULT_METHODS",
    "METHODS_WITHOUT_HIO",
    "ExperimentConfig",
    "ExperimentResult",
    "MECHANISM_FACTORIES",
    "MethodResult",
    "SweepResult",
    "appendix",
    "build_mechanism",
    "figures",
    "run_experiment",
    "sweep_parameter",
]
