"""Universal hash family used by the Optimized Local Hash (OLH) protocol.

The OLH protocol requires each user to pick a hash function ``H`` mapping
the full domain ``[c]`` into a small domain ``[c']`` (with ``c' = e^eps + 1``
rounded).  The paper's reference implementation uses xxhash seeded per
user; here we use a seeded splitmix64 finaliser, which behaves like an
independent random function per seed and is vectorisable with numpy's
uint64 arithmetic.  Statistical quality matters: OLH's unbiasedness relies
on ``Pr[H(v) = H(u)] = 1/c'`` holding essentially exactly, which weaker
multiply-shift constructions only approximate.

Each user's hash function is identified by a pair of 64-bit seeds
``(a, b)``; ``H_{a,b}(v) = mix(a ^ (v * PHI) + b) mod c'`` where ``mix`` is
the splitmix64 finaliser.
"""

from __future__ import annotations

import numpy as np

_PHI = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over uint64 arrays."""
    z = values + _PHI
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


class UniversalHashFamily:
    """A seeded hash family from ``[domain_size]`` to ``[range_size]``.

    Parameters
    ----------
    domain_size:
        Size of the input domain ``c``.  Inputs are integers in
        ``[0, domain_size)``.
    range_size:
        Size of the output domain ``c'``.  Outputs are integers in
        ``[0, range_size)``.
    rng:
        Source of randomness used to draw per-user hash seeds.
    """

    def __init__(self, domain_size: int, range_size: int,
                 rng: np.random.Generator | None = None):
        if domain_size < 1:
            raise ValueError("domain_size must be positive")
        if range_size < 2:
            raise ValueError("range_size must be at least 2")
        self.domain_size = int(domain_size)
        self.range_size = int(range_size)
        self._rng = rng if rng is not None else np.random.default_rng()

    def sample_seeds(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` independent hash functions (two uint64 seeds each)."""
        a = self._rng.integers(0, 2 ** 63, size=count, dtype=np.uint64)
        b = self._rng.integers(0, 2 ** 63, size=count, dtype=np.uint64)
        return a, b

    def evaluate(self, a: np.ndarray, b: np.ndarray,
                 values: np.ndarray | int) -> np.ndarray:
        """Evaluate ``H_{a,b}(values)`` element-wise (inputs broadcast)."""
        with np.errstate(over="ignore"):
            v = np.asarray(values, dtype=np.uint64)
            mixed = _splitmix64((np.asarray(a, dtype=np.uint64) ^ (v * _PHI))
                                + np.asarray(b, dtype=np.uint64))
        return (mixed % np.uint64(self.range_size)).astype(np.int64)

    def evaluate_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Hash every domain value under every seed.

        Returns an array of shape ``(len(a), domain_size)`` where entry
        ``[i, v]`` is ``H_{a_i, b_i}(v)``.  Used by the aggregator to count
        supports for every candidate value in one pass.
        """
        values = np.arange(self.domain_size, dtype=np.uint64)
        with np.errstate(over="ignore"):
            keyed = (np.asarray(a, dtype=np.uint64)[:, None]
                     ^ (values[None, :] * _PHI)) + np.asarray(b, dtype=np.uint64)[:, None]
            mixed = _splitmix64(keyed)
        return (mixed % np.uint64(self.range_size)).astype(np.int64)
