"""Figure 12: MAE over all 2-D range queries of volume ω = 0.5.

Paper shape: HDG achieves the best performance across datasets and ε.
"""

from _scale import current_scale, report

from repro.experiments import appendix, figures


def bench_figure_12(benchmark):
    scale = current_scale()
    quick = scale.n_users <= 100_000
    domain_size = 16 if quick else 64
    n_attributes = 4 if quick else 6

    def run():
        return appendix.figure_12_full_range(
            datasets=scale.datasets[:2], epsilons=scale.epsilons[:3],
            methods=("Uni", "MSW", "CALM", "LHIO", "TDG", "HDG"),
            n_users=scale.n_users, n_attributes=n_attributes,
            domain_size=domain_size, volume=0.5,
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig12_full_range",
           figures.format_figure_results(results, "Figure 12: full 2-D ranges"))
    for dataset, sweep in results.items():
        series = sweep.series()
        assert series["HDG"][-1] < series["Uni"][-1]
        assert series["HDG"][-1] < series["CALM"][-1]
