"""Online query-serving subsystem: snapshots, ingest service, HTTP API.

The paper's protocol is one-shot — collect, post-process, answer — but
a production aggregator runs for months: reports arrive continuously,
answers must stay fresh, and the fitted state has to survive restarts.
This package provides that serving layer on top of the mechanisms'
``save_state``/``load_state`` and ``partial_fit``/``finalize`` hooks:

:mod:`repro.serving.snapshot`
    :class:`SnapshotStore` — versioned, atomically-written on-disk
    JSON snapshots — and :func:`restore_mechanism`, which rebuilds a
    fitted estimator whose answers are bitwise identical to the saved
    one's.
:mod:`repro.serving.service`
    :class:`QueryService` — thread-safe ingest → re-finalize → answer
    loop around one mechanism, serializable with its pending (not yet
    finalized) reports.
:mod:`repro.serving.epoch`
    :class:`EstimatorEpoch` and :class:`AnswerCache` — the RCU-style
    published read view queries answer against lock-free, plus the
    ``(epoch_id, workload)``-keyed answer LRU whose invalidation is
    free by construction.
:mod:`repro.serving.tenants`
    :class:`TenantManager` — one named :class:`QueryService` per
    tenant over a :class:`~repro.storage.StorageBackend`, with
    write-ahead-log ingest durability, per-tenant quotas and locks,
    and automatic snapshot-plus-replay crash recovery.
:mod:`repro.serving.http`
    The stdlib worker-pool JSON API (``/ingest``, ``/query``,
    ``/snapshot``, ``/healthz``, ``/readyz``, ``/tenants``) behind the
    ``repro serve`` CLI verb, in single-service or multi-tenant mode,
    with bounded admission (load-shedding 503s) and degraded-mode
    responses backed by :mod:`repro.resilience`.

See docs/serving.md for the operations guide, docs/storage.md for the
storage backends and tenant lifecycle, docs/resilience.md for the
failure taxonomy and degraded-mode contract, and docs/api.md for the
full reference.
"""

from ..resilience import DegradedServiceError
from .epoch import AnswerCache, EstimatorEpoch
from .http import (ServingHTTPServer, ServingRequestHandler, build_server,
                   serve)
from .service import (SERVICE_SNAPSHOT_FORMAT, SERVICE_SNAPSHOT_VERSION,
                      QueryService, ServiceError, predicate_from_wire,
                      queries_from_wire, query_from_wire, query_to_wire)
from .snapshot import (SNAPSHOT_MECHANISMS, SnapshotInfo, SnapshotStore,
                       fsync_directory, restore_mechanism)
from .tenants import QuotaExceededError, TenantManager

__all__ = [
    "AnswerCache",
    "DegradedServiceError",
    "EstimatorEpoch",
    "QueryService",
    "QuotaExceededError",
    "SERVICE_SNAPSHOT_FORMAT",
    "SERVICE_SNAPSHOT_VERSION",
    "SNAPSHOT_MECHANISMS",
    "ServiceError",
    "ServingHTTPServer",
    "ServingRequestHandler",
    "SnapshotInfo",
    "SnapshotStore",
    "TenantManager",
    "build_server",
    "fsync_directory",
    "predicate_from_wire",
    "queries_from_wire",
    "query_from_wire",
    "query_to_wire",
    "restore_mechanism",
    "serve",
]
