"""Structured failure taxonomy for the serving + storage stack.

Every runtime failure the resilience layer handles falls into one of
three buckets, and the whole retry/degradation machinery keys off
this classification:

*transient*
    The operation may succeed if simply tried again: a locked SQLite
    database (another process holds the write lock for a moment), an
    ``EINTR``/``EAGAIN``-style I/O hiccup, an injected latency spike
    that tripped a deadline.  :class:`~repro.resilience.RetryPolicy`
    retries these with exponential backoff.
*permanent*
    Retrying is pointless: the disk is full, a log entry is corrupt
    in the middle of the sequence, the tenant does not exist.  These
    surface immediately (and trip the circuit breaker).
*degraded*
    Not an I/O failure but a *service posture*: the tenant's breaker
    is open (its write-ahead log has been failing persistently) or
    the tenant was quarantined because recovery failed at startup.
    Queries keep answering from the last finalized estimator; ingest
    answers 503 with ``Retry-After`` until a recovery probe succeeds.

:func:`classify_error` maps arbitrary raised exceptions onto
``"transient"`` / ``"permanent"`` so backends never need to know
about this module — the classification happens at the call site
(:meth:`repro.resilience.RetryPolicy.call`).  docs/resilience.md has
the full taxonomy table and the degraded-mode contract.
"""

from __future__ import annotations

import errno

from ..storage.base import CorruptEntryError, StorageError

__all__ = [
    "DeadlineExceededError",
    "DegradedServiceError",
    "PermanentStorageError",
    "TransientStorageError",
    "classify_error",
    "is_transient",
]

#: ``errno`` values treated as transient I/O hiccups.
TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.EBUSY,
                              errno.ETIMEDOUT})

#: Substrings of SQLite ``OperationalError`` messages that mean "the
#: database is momentarily busy", not "the database is broken".
_SQLITE_TRANSIENT_MARKERS = ("database is locked", "database table is locked",
                             "database is busy")


class TransientStorageError(StorageError):
    """A storage failure that may clear on retry (locked db, EINTR)."""


class PermanentStorageError(StorageError):
    """A storage failure retrying cannot fix (corruption, full disk)."""


class DeadlineExceededError(TimeoutError):
    """The operation's deadline expired before it could complete."""


class DegradedServiceError(RuntimeError):
    """The tenant is serving in degraded mode: queries only.

    Raised when ingest reaches a tenant whose circuit breaker is open
    (persistent write-ahead-log failures) or whose recovery failed at
    startup (quarantine).  ``retry_after`` is the suggested client
    back-off in seconds — the HTTP layer turns it into a 503 response
    with a ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 tenant: str | None = None):
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))
        self.tenant = tenant


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying."""
    return classify_error(error) == "transient"


def classify_error(error: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` for a raised exception.

    The rules, in order:

    * the typed taxonomy errors classify as themselves;
    * ``sqlite3.OperationalError`` with a locked/busy message is
      transient (any other operational error — malformed schema, disk
      I/O error — is permanent);
    * ``OSError`` with an ``errno`` in :data:`TRANSIENT_ERRNOS` is
      transient;
    * ``TimeoutError`` is transient (the deadline machinery raises
      :class:`DeadlineExceededError`, which is *not* retried — it is
      the retry loop's own stop signal);
    * everything else is permanent.
    """
    if isinstance(error, DeadlineExceededError):
        return "permanent"
    if isinstance(error, TransientStorageError):
        return "transient"
    if isinstance(error, (PermanentStorageError, CorruptEntryError)):
        return "permanent"
    # sqlite3 stays an optional import so the taxonomy works for the
    # JSON backend without sqlite present.
    try:
        import sqlite3
    except ImportError:  # pragma: no cover - stdlib always has it
        sqlite3 = None
    if sqlite3 is not None and isinstance(error, sqlite3.OperationalError):
        message = str(error).lower()
        if any(marker in message for marker in _SQLITE_TRANSIENT_MARKERS):
            return "transient"
        return "permanent"
    if isinstance(error, OSError) and error.errno in TRANSIENT_ERRNOS:
        return "transient"
    if isinstance(error, TimeoutError):
        return "transient"
    return "permanent"
